package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a unified metrics registry: counters, gauges and histograms,
// optionally labelled, rendered in Prometheus text exposition format. Metric
// updates are atomic and lock-free; registration and exposition take the
// registry lock. Registering two families under one name panics — that is a
// programming error the exposition test would otherwise hide.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// Family describes one registered metric family, for exposition tests and
// introspection.
type Family struct {
	Name string
	Help string
	Type string // "counter" | "gauge" | "histogram"
}

// family is one named metric with its children (one per label-value tuple;
// unlabelled metrics have a single child under the empty key).
type family struct {
	Family
	labelNames []string
	buckets    []float64      // histograms only
	fn         func() float64 // CounterFunc/GaugeFunc families; nil otherwise

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

// child holds the samples of one label-value tuple.
type child struct {
	labelValues []string
	bits        atomic.Uint64 // counter count, or gauge float64 bits

	// histogram state
	bucketCounts []atomic.Uint64
	sumBits      atomic.Uint64
	count        atomic.Uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// register adds a family, panicking on duplicate names or invalid
// histograms.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.Name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.Name))
	}
	for i := 1; i < len(f.buckets); i++ {
		if f.buckets[i] <= f.buckets[i-1] {
			panic(fmt.Sprintf("telemetry: metric %q has non-increasing buckets", f.Name))
		}
	}
	f.children = map[string]*child{}
	r.fams[f.Name] = f
	return f
}

// childFor returns (creating if needed) the child for the given label
// values.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q got %d label values for %d labels", f.Name, len(values), len(f.labelNames)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		if f.Type == "histogram" {
			c.bucketCounts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ c *child }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.c.bits.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.c.bits.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.c.bits.Load() }

// Counter registers an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{Family: Family{Name: name, Help: help, Type: "counter"}})
	return &Counter{c: f.childFor(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(&family{
		Family: Family{Name: name, Help: help, Type: "counter"}, labelNames: labelNames,
	})}
}

// With returns the counter for the given label values (created on first
// use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{c: v.f.childFor(labelValues)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic totals owned by another component (e.g. cache hit
// counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{Family: Family{Name: name, Help: help, Type: "counter"}, fn: fn})
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ c *child }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{Family: Family{Name: name, Help: help, Type: "gauge"}})
	return &Gauge{c: f.childFor(nil)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(&family{
		Family: Family{Name: name, Help: help, Type: "gauge"}, labelNames: labelNames,
	})}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{c: v.f.childFor(labelValues)}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for mirroring live state (queue depth, cache fill) without bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{Family: Family{Name: name, Help: help, Type: "gauge"}, fn: fn})
}

// Histogram buckets observations into cumulative Prometheus buckets.
type Histogram struct {
	f *family
	c *child
}

// Histogram registers an unlabelled histogram with the given upper bucket
// bounds (must be increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	f := r.register(&family{
		Family:  Family{Name: name, Help: help, Type: "histogram"},
		buckets: append([]float64(nil), buckets...),
	})
	return &Histogram{f: f, c: f.childFor(nil)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family with the given upper
// bucket bounds (must be increasing; +Inf is implicit).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(&family{
		Family:     Family{Name: name, Help: help, Type: "histogram"},
		buckets:    append([]float64(nil), buckets...),
		labelNames: labelNames,
	})}
}

// With returns the histogram for the given label values (created on first
// use). Hot paths should resolve their children once up front: With takes
// the family lock and allocates the lookup key, while Observe on the
// returned histogram is lock-free and allocation-free.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, c: v.f.childFor(labelValues)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	h.c.bucketCounts[idx].Add(1)
	h.c.count.Add(1)
	for {
		old := h.c.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.c.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.c.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.c.sumBits.Load()) }

// Families lists the registered families sorted by name.
func (r *Registry) Families() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f.Family)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders every family in text exposition format, sorted by
// name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Type)
		if f.fn != nil {
			fmt.Fprintf(w, "%s %s\n", f.Name, formatFloat(f.fn()))
			continue
		}
		f.mu.Lock()
		children := make([]*child, 0, len(f.order))
		for _, key := range f.order {
			children = append(children, f.children[key])
		}
		f.mu.Unlock()
		for _, c := range children {
			switch f.Type {
			case "histogram":
				writeHistogram(w, f, c)
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", f.Name, labelString(f.labelNames, c.labelValues), c.bits.Load())
			default:
				fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(f.labelNames, c.labelValues), formatFloat(math.Float64frombits(c.bits.Load())))
			}
		}
	}
}

// writeHistogram renders one histogram child: cumulative buckets, +Inf, sum
// and count.
func writeHistogram(w io.Writer, f *family, c *child) {
	base := labelPairs(f.labelNames, c.labelValues)
	var cum uint64
	for i, bound := range f.buckets {
		cum += c.bucketCounts[i].Load()
		pairs := append(append([]string(nil), base...), fmt.Sprintf("le=%q", formatFloat(bound)))
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.Name, strings.Join(pairs, ","), cum)
	}
	cum += c.bucketCounts[len(f.buckets)].Load()
	pairs := append(append([]string(nil), base...), `le="+Inf"`)
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.Name, strings.Join(pairs, ","), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelString(f.labelNames, c.labelValues), formatFloat(math.Float64frombits(c.sumBits.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelString(f.labelNames, c.labelValues), c.count.Load())
}

// labelPairs renders name="value" pairs with Prometheus escaping.
func labelPairs(names, values []string) []string {
	if len(names) == 0 {
		return nil
	}
	out := make([]string, len(names))
	for i := range names {
		// Go's %q escaping (backslash, quote, newline) matches the
		// exposition format's label escaping rules.
		out[i] = fmt.Sprintf("%s=%q", names[i], values[i])
	}
	return out
}

// labelString renders the {k="v",...} suffix, empty for unlabelled metrics.
func labelString(names, values []string) string {
	pairs := labelPairs(names, values)
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip form).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
