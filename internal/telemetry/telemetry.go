// Package telemetry is the observability layer of the reproduction: a
// structured, ring-buffered event tracer for the simulation engine, the DASE
// estimator internals and the daemon's job lifecycle, exporters for the
// Chrome trace-event format and NDJSON, and a unified metrics registry with
// Prometheus text exposition.
//
// The tracer follows the same discipline as sim.WithInvariantChecks: it is
// strictly observation-only (emitting events never changes simulation
// results — the determinism goldens are byte-identical with tracing on), and
// when disabled the instrumented hot paths pay exactly one nil check per
// site. Events are fixed-size structs copied into a pre-allocated ring, so
// enabled tracing performs no per-event allocation either; when the ring
// fills, the oldest events are overwritten and counted as dropped.
package telemetry

import "sync"

// Kind identifies an event type. The taxonomy covers the three instrumented
// layers: the cycle engine (interval snapshots, SM drain/migration), the
// schedulers (per-app DASE internals, partition-search decisions), and the
// daemon (job lifecycle spans).
type Kind uint8

const (
	// KindInterval is one application's view of one estimation interval
	// (engine layer): Cycle, App, SMs, Alpha, BLP, Served.
	KindInterval Kind = iota + 1
	// KindSMDrain marks an SM beginning to drain toward a new owner; App is
	// the owner being drained away.
	KindSMDrain
	// KindSMAssign marks a drained SM being handed to App.
	KindSMAssign
	// KindDASEApp is the per-app DASE breakdown for one interval (scheduler
	// layer): Alpha, BLP, TimeBank/TimeRow/TimeLLC, MBB verdict, and the
	// estimated all-SM slowdown in Est.
	KindDASEApp
	// KindSchedDecision records one partition-search outcome: the current
	// and best candidate scores (unfairness for DASE-Fair, weighted speedup
	// for DASE-Perf), the winning allocation, and whether the policy
	// actually re-partitioned (Realloc).
	KindSchedDecision
	// KindActual records an application's measured whole-run slowdown, the
	// ground truth the per-interval estimates are judged against.
	KindActual
	// KindJobQueued through KindJobDone are the daemon's job lifecycle
	// (wall-clock timestamps in Wall).
	KindJobQueued
	KindJobStarted
	KindJobRetry
	KindJobDone
	// KindFleetJob is one fleet-job lifecycle transition (fleet layer):
	// Note carries the verb (arrive/place/done/reject/cancel), Job the job
	// id, App the tenant index, SM the GPU id (-1 when not placed), SMs the
	// job's SM demand or assignment, Cycle the scheduling interval.
	KindFleetJob
	// KindFleetInterval is one tenant's view of one fleet scheduling
	// interval: App the tenant index, Note the tenant name, SMs the SMs
	// allocated fleet-wide this interval, Served the tenant's queued job
	// count, Est the tenant's mean DASE-estimated slowdown across its
	// running jobs, Deserved the tenant's deserved SM share, Cycle the
	// scheduling interval.
	KindFleetInterval
	// KindClusterRPC is one completed cluster RPC (cluster layer): Note the
	// method (heartbeat/steal/forward/reconcile/handoff), Job the peer id,
	// Wall the start time, Dur the round-trip duration in nanoseconds, and
	// CacheHit true when the RPC succeeded.
	KindClusterRPC
	// KindJobRouted marks the routing node's decision to hand a submission
	// to a peer: Job the job id assigned by the peer, Note the peer id, Wall
	// the decision time. Together with the peer's job.queued event (same
	// TraceID) it stitches the cross-node submit chain.
	KindJobRouted
)

// kindNames maps Kind to its wire name (NDJSON "kind" field, Chrome trace
// event names).
var kindNames = map[Kind]string{
	KindInterval:      "interval",
	KindSMDrain:       "sm.drain",
	KindSMAssign:      "sm.assign",
	KindDASEApp:       "dase.app",
	KindSchedDecision: "sched.decision",
	KindActual:        "slowdown.actual",
	KindJobQueued:     "job.queued",
	KindJobStarted:    "job.started",
	KindJobRetry:      "job.retry",
	KindJobDone:       "job.done",
	KindFleetJob:      "fleet.job",
	KindFleetInterval: "fleet.interval",
	KindClusterRPC:    "cluster.rpc",
	KindJobRouted:     "job.routed",
}

// String returns the Kind's wire name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// KindFromString is String's inverse; unknown names return 0.
func KindFromString(s string) Kind {
	for k, n := range kindNames {
		if n == s {
			return k
		}
	}
	return 0
}

// MaxApps bounds the allocation array carried by scheduler-decision events
// (spatial multitasking concurrency in the paper tops out at 4 apps).
const MaxApps = 8

// Event is one trace record. It is a flat union over all kinds so the ring
// buffer holds fixed-size values: each Kind documents which fields it sets,
// and unset fields are zero (App and SM use -1 for "not applicable"). The
// struct is copied by value into the ring; emitting allocates nothing.
type Event struct {
	Kind Kind
	Seq  uint64 // per-tracer sequence number, assigned by Emit
	// Cycle is the simulation-cycle timestamp (engine and scheduler events).
	Cycle uint64
	// Wall is the wall-clock timestamp in Unix nanoseconds (daemon events).
	Wall int64
	App  int32 // application index, -1 when not app-scoped
	SM   int32 // SM id, -1 when not SM-scoped

	// Job and Note carry small strings: the job id for lifecycle events; a
	// policy name, terminal status, or error summary in Note.
	Job  string
	Note string

	// DASE internals (KindDASEApp) and interval counters (KindInterval).
	Alpha    float64
	BLP      float64
	TimeBank float64
	TimeRow  float64
	TimeLLC  float64
	MBB      bool
	Est      float64 // estimated all-SM slowdown
	Actual   float64 // measured slowdown (KindActual)
	Served   uint64
	SMs      int32

	// Partition-search outcome (KindSchedDecision).
	CurScore  float64
	BestScore float64
	NApps     int32
	Alloc     [MaxApps]int32
	Realloc   bool

	// Daemon lifecycle detail (KindJobStarted/KindJobRetry/KindJobDone).
	Attempt  int32
	CacheHit bool

	// Distributed trace context (cluster and daemon events): which trace
	// this event belongs to, which span it is part of, and that span's
	// parent. Zero means "not part of a distributed trace". Node names the
	// emitting cluster node.
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Node     string

	// Dur is a duration in nanoseconds (KindClusterRPC round-trip time).
	Dur int64

	// Deserved is the tenant's deserved SM share (KindFleetInterval).
	Deserved float64
}

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity: 64Ki events keeps ~20 full DASE-Fair intervals of a 4-app run
// with room to spare, at about 15 MB.
const DefaultCapacity = 1 << 16

// Tracer is a bounded, concurrency-safe event ring. The zero value is not
// usable; construct with New. A nil *Tracer is the disabled tracer: Emit on
// nil is safe (and instrumentation sites additionally guard with a nil check
// so disabled tracing costs nothing beyond that check).
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever emitted; buf index = (total-1) % len(buf)
}

// New builds a tracer retaining the most recent capacity events
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit appends one event, overwriting the oldest when the ring is full, and
// assigns its sequence number. Safe on a nil tracer and for concurrent use.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.total
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.total%uint64(cap(t.buf))] = e
	}
	t.total++
	t.mu.Unlock()
}

// Len returns how many events the ring currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns how many events were ever emitted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}

// Events returns a copy of the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		copy(out, t.buf)
		return out
	}
	// Full ring: the oldest event sits right after the newest.
	head := int(t.total % uint64(cap(t.buf)))
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}
