package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTracerRingOrderAndDrop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Kind: KindInterval, Cycle: uint64(i), App: -1, SM: -1})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 7 {
		t.Fatalf("Total = %d, want 7", tr.Total())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		wantCycle := uint64(3 + i) // events 3..6 survive, oldest first
		if e.Cycle != wantCycle {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, wantCycle)
		}
		if e.Seq != uint64(3+i) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, 3+i)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindInterval})
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must behave as an empty disabled tracer")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: KindJobStarted, App: -1, SM: -1})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("Total = %d, want 800", tr.Total())
	}
	// Sequence numbers of the retained window must be contiguous.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	tr := New(64)
	avg := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindDASEApp, Cycle: 1, App: 0, SM: -1, Est: 1.5})
	})
	if avg > 0 {
		t.Fatalf("Emit allocates %.1f objects per call, want 0", avg)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Kind: KindDASEApp, Cycle: 50_000, App: 0, SM: -1,
		Alpha: 0.42, BLP: 3.1, TimeBank: 100, TimeRow: 50, TimeLLC: 25,
		MBB: true, Est: 2.5, SMs: 8, Note: "DASE-Fair"})
	tr.Emit(Event{Kind: KindSchedDecision, Cycle: 50_000, App: -1, SM: -1,
		CurScore: 1.8, BestScore: 1.2, NApps: 2, Alloc: [MaxApps]int32{10, 6},
		Realloc: true, Note: "DASE-Fair"})
	tr.Emit(Event{Kind: KindJobDone, Wall: 12345678, App: -1, SM: -1,
		Job: "job-1", Note: "done", Attempt: 2, CacheHit: true})

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip kept %d events, want 3", len(back))
	}
	for i, e := range tr.Events() {
		if back[i] != e {
			t.Errorf("event %d changed in round trip:\n  out: %+v\n  in:  %+v", i, e, back[i])
		}
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := KindInterval; k <= KindJobDone; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := KindFromString(name); got != k {
			t.Errorf("KindFromString(%q) = %d, want %d", name, got, k)
		}
	}
}

func TestChromeTraceExportValidates(t *testing.T) {
	tr := New(32)
	tr.Emit(Event{Kind: KindJobQueued, Wall: 1_000_000, App: -1, SM: -1, Job: "job-1"})
	tr.Emit(Event{Kind: KindJobStarted, Wall: 2_000_000, App: -1, SM: -1, Job: "job-1", Attempt: 1})
	tr.Emit(Event{Kind: KindInterval, Cycle: 50_000, App: 0, SM: -1, Alpha: 0.3, BLP: 2, Served: 900, SMs: 8})
	tr.Emit(Event{Kind: KindDASEApp, Cycle: 50_000, App: 0, SM: -1, Alpha: 0.3, Est: 1.9, SMs: 8})
	tr.Emit(Event{Kind: KindSchedDecision, Cycle: 50_000, App: -1, SM: -1, CurScore: 2, BestScore: 1.5, NApps: 2, Alloc: [MaxApps]int32{9, 7}, Realloc: true, Note: "DASE-Fair"})
	tr.Emit(Event{Kind: KindSMDrain, Cycle: 50_001, SM: 3, App: 0})
	tr.Emit(Event{Kind: KindSMAssign, Cycle: 50_040, SM: 3, App: 1})
	tr.Emit(Event{Kind: KindActual, Cycle: 100_000, App: 0, SM: -1, Actual: 2.1})
	tr.Emit(Event{Kind: KindJobDone, Wall: 9_000_000, App: -1, SM: -1, Job: "job-1", Note: "done"})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("our own chrome export fails the schema check: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"job job-1"`, `"dase.est app0"`, `"sched.decision"`, `"sm.drain sm3"`, `"slowdown.actual app0"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{]`,
		"no array":      `{"foo": 1}`,
		"missing name":  `{"traceEvents":[{"ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]}`,
		"missing ts":    `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":1}]}`,
		"X without dur": `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]}`,
		"string counter": `{"traceEvents":[{"name":"x","ph":"C","ts":1,"pid":1,"tid":1,
			"args":{"v":"high"}}]}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestErrorTimeline(t *testing.T) {
	events := []Event{
		{Kind: KindDASEApp, Cycle: 100_000, App: 1, Est: 3.0},
		{Kind: KindDASEApp, Cycle: 50_000, App: 0, Est: 2.0},
		{Kind: KindDASEApp, Cycle: 100_000, App: 0, Est: 2.4, MBB: true},
		{Kind: KindDASEApp, Cycle: 50_000, App: 1, Est: 3.3},
		{Kind: KindActual, App: 0, Actual: 2.0},
		// App 1 has no actual: errors must be NaN.
	}
	tls := ErrorTimeline(events)
	if len(tls) != 2 {
		t.Fatalf("%d app timelines, want 2", len(tls))
	}
	a0 := tls[0]
	if a0.App != 0 || a0.Actual != 2.0 || len(a0.Points) != 2 {
		t.Fatalf("app 0 timeline wrong: %+v", a0)
	}
	if a0.Points[0].Cycle != 50_000 || a0.Points[1].Cycle != 100_000 {
		t.Fatal("points not sorted by cycle")
	}
	if a0.Points[0].Err != 0 {
		t.Errorf("exact estimate: err %v, want 0", a0.Points[0].Err)
	}
	if got := a0.Points[1].Err; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("err = %v, want 0.2", got)
	}
	if !a0.Points[1].MBB {
		t.Error("MBB flag lost")
	}
	if got := a0.MeanAbsErr(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MeanAbsErr = %v, want 0.1", got)
	}
	if got := a0.MaxAbsErr(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MaxAbsErr = %v, want 0.2", got)
	}
	a1 := tls[1]
	if !math.IsNaN(a1.Points[0].Err) || !math.IsNaN(a1.MeanAbsErr()) || !math.IsNaN(a1.MaxAbsErr()) {
		t.Error("app without actual must have NaN errors")
	}
}
