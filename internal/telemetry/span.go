package telemetry

import (
	"net/http"
	"strconv"
	"sync"
)

// SpanContext identifies one hop of a distributed operation: which trace the
// operation belongs to (TraceID, constant across nodes), which span this hop
// is (SpanID), and which span caused it (ParentID, zero for a root). IDs are
// uint64 and rendered as 16-digit hex on the wire; zero means "absent".
//
// The context rides on cluster RPC headers (TraceIDHeader/SpanIDHeader) and
// on every job-lifecycle trace event, so a job that is submitted on node A,
// forwarded to node B and stolen by node C leaves a chain of spans sharing
// one TraceID that cmd/dasetrace can reassemble from merged NDJSON.
type SpanContext struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
}

// Valid reports whether the context names a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// Cluster RPC trace-propagation headers. The caller writes its TraceID and
// its own SpanID; the callee reads them back with SpanFromHeaders, where the
// caller's span becomes the parent of every span the callee mints.
const (
	TraceIDHeader = "X-Dased-Trace-Id"
	SpanIDHeader  = "X-Dased-Span-Id"
)

// SetHeaders writes the context onto an outgoing request's headers. A zero
// context writes nothing.
func (sc SpanContext) SetHeaders(h http.Header) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceIDHeader, FormatSpanID(sc.TraceID))
	if sc.SpanID != 0 {
		h.Set(SpanIDHeader, FormatSpanID(sc.SpanID))
	}
}

// SpanFromHeaders parses an incoming request's trace headers. The remote
// caller's span id lands in ParentID (SpanID stays zero — the callee mints
// its own with SpanSource.Child). Absent or malformed headers yield the zero
// context.
func SpanFromHeaders(h http.Header) SpanContext {
	tid, err := ParseSpanID(h.Get(TraceIDHeader))
	if err != nil || tid == 0 {
		return SpanContext{}
	}
	sid, err := ParseSpanID(h.Get(SpanIDHeader))
	if err != nil {
		sid = 0
	}
	return SpanContext{TraceID: tid, ParentID: sid}
}

// FormatSpanID renders an id as 16-digit lower-case hex (the wire and NDJSON
// form). Zero renders as the empty string.
func FormatSpanID(id uint64) string {
	if id == 0 {
		return ""
	}
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

// ParseSpanID is FormatSpanID's inverse; the empty string parses to zero.
func ParseSpanID(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

// Span returns the event's trace context.
func (e *Event) Span() SpanContext {
	return SpanContext{TraceID: e.TraceID, SpanID: e.SpanID, ParentID: e.ParentID}
}

// SetSpan stamps the context onto the event.
func (e *Event) SetSpan(sc SpanContext) {
	e.TraceID, e.SpanID, e.ParentID = sc.TraceID, sc.SpanID, sc.ParentID
}

// SpanSource mints span and trace ids from a splitmix64 stream, so tests that
// seed the source get fully deterministic ids (splitmix64 is the same
// generator the fault-injection registry and the engine's seeded RNGs build
// on: tiny state, full 2^64 period, and every output is non-zero-biased
// enough that we just skip the rare zero).
type SpanSource struct {
	mu    sync.Mutex
	state uint64
}

// NewSpanSource builds a source seeded deterministically.
func NewSpanSource(seed uint64) *SpanSource {
	return &SpanSource{state: seed}
}

// next returns the next splitmix64 output, skipping zero (zero means "absent"
// on the wire).
func (s *SpanSource) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.state += 0x9e3779b97f4a7c15
		z := s.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// Root mints a new trace: fresh TraceID and SpanID, no parent.
func (s *SpanSource) Root() SpanContext {
	return SpanContext{TraceID: s.next(), SpanID: s.next()}
}

// Child mints a span continuing parent's trace. The parent may be a full
// local span (its SpanID becomes the ParentID) or a wire context parsed by
// SpanFromHeaders (its ParentID is carried through). An invalid parent
// starts a new root trace.
func (s *SpanSource) Child(parent SpanContext) SpanContext {
	if !parent.Valid() {
		return s.Root()
	}
	pid := parent.SpanID
	if pid == 0 {
		pid = parent.ParentID
	}
	return SpanContext{TraceID: parent.TraceID, SpanID: s.next(), ParentID: pid}
}
