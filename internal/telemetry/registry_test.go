package telemetry

import (
	"strings"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	g := r.Gauge("depth", "Depth.")
	g.Set(3)
	g.Add(-1.5)
	if g.Load() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Load())
	}
	cv := r.CounterVec("hits_total", "Hits.", "tier")
	cv.With("l1").Add(2)
	cv.With("l2").Inc()
	gv := r.GaugeVec("info", "Info.", "version", "os")
	gv.With("1.2", "linux").Set(1)
	r.CounterFunc("fn_total", "Fn.", func() float64 { return 42 })
	r.GaugeFunc("fn_gauge", "Fn gauge.", func() float64 { return 7.5 })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total 5\n",
		"# TYPE depth gauge\ndepth 1.5\n",
		`hits_total{tier="l1"} 2`,
		`hits_total{tier="l2"} 1`,
		`info{version="1.2",os="linux"} 1`,
		"fn_total 42\n",
		"fn_gauge 7.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 105.65 {
		t.Fatalf("sum = %v, want 105.65", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 2`, // cumulative: 0.05 and the on-boundary 0.1
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 105.65",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup", "x")
	mustPanic("duplicate name", func() { r.Gauge("dup", "y") })
	mustPanic("non-increasing buckets", func() { r.Histogram("h", "x", 1, 1) })
	v := r.CounterVec("labelled", "x", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

func TestFamiliesSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zeta", "z")
	r.Counter("alpha_total", "a")
	r.Histogram("mid", "m", 1)
	fams := r.Families()
	if len(fams) != 3 {
		t.Fatalf("%d families, want 3", len(fams))
	}
	wantNames := []string{"alpha_total", "mid", "zeta"}
	wantTypes := []string{"counter", "histogram", "gauge"}
	for i, f := range fams {
		if f.Name != wantNames[i] || f.Type != wantTypes[i] {
			t.Errorf("family %d = %+v, want %s/%s", i, f, wantNames[i], wantTypes[i])
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("g", "g", "path").With(`a"b\c` + "\n").Set(1)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if want := `g{path="a\"b\\c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing %q in:\n%s", want, sb.String())
	}
}
