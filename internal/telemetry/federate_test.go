package telemetry

import (
	"math"
	"strings"
	"testing"
)

// twoNodeSnapshots builds two registries with overlapping families and
// returns their snapshots: counters, gauges, a labeled counter, and a
// histogram with identical bounds.
func twoNodeSnapshots() []NodeSnapshot {
	mk := func(jobs float64, queue float64, method string, rpcs float64, obs ...float64) []FamilySnapshot {
		reg := NewRegistry()
		reg.Counter("jobs_total", "Jobs.").Add(uint64(jobs))
		reg.Gauge("queue_depth", "Queue.").Set(queue)
		reg.CounterVec("rpcs_total", "RPCs.", "method").With(method).Add(uint64(rpcs))
		h := reg.Histogram("latency_seconds", "Latency.", 0.01, 0.1, 1)
		for _, o := range obs {
			h.Observe(o)
		}
		return reg.Snapshot()
	}
	return []NodeSnapshot{
		{Node: "n1", Families: mk(10, 3, "steal", 7, 0.005, 0.5)},
		{Node: "n2", Families: mk(5, 4, "forward", 2, 0.05, 2)},
	}
}

func findFam(t *testing.T, fams []FamilySnapshot, name string) FamilySnapshot {
	t.Helper()
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %s missing from %d families", name, len(fams))
	return FamilySnapshot{}
}

func TestMergeSnapshotsCountersAndGauges(t *testing.T) {
	merged := MergeSnapshots(twoNodeSnapshots())

	if got := findFam(t, merged, "jobs_total").Points[0].Value; got != 15 {
		t.Errorf("merged counter = %v, want 15 (10+5)", got)
	}
	if got := findFam(t, merged, "queue_depth").Points[0].Value; got != 7 {
		t.Errorf("merged gauge = %v, want 7 (3+4)", got)
	}
	// Distinct label values stay separate points, sorted by label value.
	rpcs := findFam(t, merged, "rpcs_total")
	if len(rpcs.Points) != 2 {
		t.Fatalf("rpcs_total has %d points, want 2", len(rpcs.Points))
	}
	if rpcs.Points[0].LabelValues[0] != "forward" || rpcs.Points[0].Value != 2 {
		t.Errorf("point 0 = %v %v", rpcs.Points[0].LabelValues, rpcs.Points[0].Value)
	}
	if rpcs.Points[1].LabelValues[0] != "steal" || rpcs.Points[1].Value != 7 {
		t.Errorf("point 1 = %v %v", rpcs.Points[1].LabelValues, rpcs.Points[1].Value)
	}
}

func TestMergeSnapshotsHistograms(t *testing.T) {
	merged := MergeSnapshots(twoNodeSnapshots())
	h := findFam(t, merged, "latency_seconds")
	p := h.Points[0]
	// n1 observed 0.005 (bucket ≤0.01) and 0.5 (≤1); n2 observed 0.05 (≤0.1)
	// and 2 (+Inf).
	wantBuckets := []uint64{1, 1, 1, 1}
	for i, want := range wantBuckets {
		if p.BucketCounts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, p.BucketCounts[i], want)
		}
	}
	if p.Count != 4 {
		t.Errorf("count = %d, want 4", p.Count)
	}
	if math.Abs(p.Sum-2.555) > 1e-9 {
		t.Errorf("sum = %v, want 2.555", p.Sum)
	}
}

func TestMergeSnapshotsSkipsMismatchedShapes(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", "H.", 0.1, 1).Observe(0.05)
	b := NewRegistry()
	b.Histogram("h", "H.", 0.5, 5).Observe(0.05)
	merged := MergeSnapshots([]NodeSnapshot{
		{Node: "n1", Families: a.Snapshot()},
		{Node: "n2", Families: b.Snapshot()},
	})
	h := findFam(t, merged, "h")
	// First-seen shape wins; the mismatched node's points are dropped rather
	// than merged into wrong buckets.
	if len(h.Buckets) != 2 || h.Buckets[0] != 0.1 {
		t.Errorf("buckets = %v, want first-seen [0.1 1]", h.Buckets)
	}
	if h.Points[0].Count != 1 {
		t.Errorf("count = %d, want 1 (mismatched node skipped)", h.Points[0].Count)
	}
}

func TestByNodeSnapshotsPreservesOrigin(t *testing.T) {
	fams := ByNodeSnapshots(twoNodeSnapshots())
	jobs := findFam(t, fams, "jobs_total")
	if len(jobs.LabelNames) == 0 || jobs.LabelNames[0] != "node" {
		t.Fatalf("label names = %v, want leading \"node\"", jobs.LabelNames)
	}
	if len(jobs.Points) != 2 {
		t.Fatalf("jobs_total has %d points, want one per node", len(jobs.Points))
	}
	byNode := map[string]float64{}
	for _, p := range jobs.Points {
		byNode[p.LabelValues[0]] = p.Value
	}
	if byNode["n1"] != 10 || byNode["n2"] != 5 {
		t.Errorf("per-node values = %v, want n1:10 n2:5", byNode)
	}
}

func TestWritePrometheusSnapshotRoundTrip(t *testing.T) {
	var sb strings.Builder
	WritePrometheusSnapshot(&sb, MergeSnapshots(twoNodeSnapshots()))
	out := sb.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 15",
		"queue_depth 7",
		`rpcs_total{method="steal"} 7`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket rendering: the ≤1 bucket holds 3 of the 4 samples.
	if !strings.Contains(out, `latency_seconds_bucket{le="1"} 3`) {
		t.Errorf("cumulative bucket wrong:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.4}
	cases := []struct {
		q      float64
		counts []uint64
		want   float64
	}{
		{0.5, []uint64{10, 0, 0, 0}, 0.05}, // interpolates inside first bucket
		{1.0, []uint64{10, 0, 0, 0}, 0.1},  // top of first bucket
		{0.5, []uint64{0, 10, 0, 0}, 0.15}, // second bucket midpoint
		{0.99, []uint64{0, 0, 0, 10}, 0.4}, // +Inf bucket clamps to max bound
		{0.5, []uint64{0, 0, 0, 0}, 0},     // empty histogram
		{-1, []uint64{10, 0, 0, 0}, 0},     // q clamped low
		{2, []uint64{10, 0, 0, 0}, 0.1},    // q clamped high
		{0.75, []uint64{5, 5, 0, 0}, 0.15}, // rank 7.5 interpolates the second bucket
	}
	for _, c := range cases {
		if got := HistogramQuantile(c.q, bounds, c.counts); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HistogramQuantile(%v, %v) = %v, want %v", c.q, c.counts, got, c.want)
		}
	}
	if got := HistogramQuantile(0.5, nil, nil); got != 0 {
		t.Errorf("empty bounds = %v, want 0", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "C.").Add(3)
	reg.Histogram("h_seconds", "H.", 0.1, 1).Observe(0.05)
	snap := NodeSnapshot{Node: "n1", Families: reg.Snapshot()}

	var sb strings.Builder
	WritePrometheusSnapshot(&sb, MergeSnapshots([]NodeSnapshot{snap}))
	direct := sb.String()

	var sb2 strings.Builder
	reg.WritePrometheus(&sb2)
	// The snapshot path must render the same samples as the live registry
	// (modulo family interleaving, which is sorted in both).
	for _, line := range strings.Split(direct, "\n") {
		if line == "" {
			continue
		}
		if !strings.Contains(sb2.String(), line) {
			t.Errorf("snapshot rendering %q not in live exposition:\n%s", line, sb2.String())
		}
	}
}
