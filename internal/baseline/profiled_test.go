package baseline

import (
	"math"
	"testing"

	"dasesim/internal/sim"
)

func TestProfiledEstimate(t *testing.T) {
	p := NewProfiled([]float64{0.60, 0.40})
	s := &sim.IntervalSnapshot{
		IntervalCycles: 50_000,
		BusCycles:      300_000,
		Apps: []sim.AppInterval{
			{DataCycles: 90_000}, // 30% shared -> slowdown 2.0
			{DataCycles: 30_000}, // 10% shared -> slowdown 4.0
		},
	}
	out := p.Estimate(s)
	if math.Abs(out[0]-2.0) > 1e-9 || math.Abs(out[1]-4.0) > 1e-9 {
		t.Fatalf("Profiled = %v, want [2 4]", out)
	}
}

func TestProfiledClampsAndDegrades(t *testing.T) {
	p := NewProfiled([]float64{0.10})
	s := &sim.IntervalSnapshot{
		BusCycles: 100_000,
		Apps:      []sim.AppInterval{{DataCycles: 50_000}}, // more BW than alone
	}
	if got := p.Estimate(s)[0]; got != 1 {
		t.Fatalf("slowdown below 1 must clamp, got %v", got)
	}
	// Missing profile entries and zero bandwidth degrade to 1.
	p2 := NewProfiled(nil)
	s2 := &sim.IntervalSnapshot{BusCycles: 100, Apps: []sim.AppInterval{{}}}
	if got := p2.Estimate(s2)[0]; got != 1 {
		t.Fatalf("missing profile must give 1, got %v", got)
	}
	if p2.Name() != "Profiled" {
		t.Fatal("name")
	}
}

func TestProfiledCopiesInput(t *testing.T) {
	in := []float64{0.5}
	p := NewProfiled(in)
	in[0] = 0.9
	if p.AloneBW[0] != 0.5 {
		t.Fatal("NewProfiled must copy the profile slice")
	}
}
