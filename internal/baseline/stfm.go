package baseline

import "dasesim/internal/sim"

// STFM approximates the Stall-Time Fair Memory scheduling slowdown
// estimator (Mutlu & Moscibroda, MICRO 2007 — the paper's reference [14]):
// slowdown = Tshared / Talone, with Talone approximated by subtracting the
// memory stall time other applications impose — here, the bank-blocked
// cycles normalised by bank-level parallelism. It is DASE's Eq. 8/9/14 bank
// term alone: no row-buffer or cache interference, no TLP discount, no
// all-SM scaling — which is exactly what it misses on a GPU.
type STFM struct{}

// NewSTFM builds the estimator.
func NewSTFM() *STFM { return &STFM{} }

// Name implements core.Estimator.
func (s *STFM) Name() string { return "STFM" }

// Estimate implements core.Estimator.
func (s *STFM) Estimate(snap *sim.IntervalSnapshot) []float64 {
	out := make([]float64, len(snap.Apps))
	tShared := float64(snap.IntervalCycles)
	for i := range snap.Apps {
		a := &snap.Apps[i]
		out[i] = 1
		if tShared == 0 {
			continue
		}
		blp := a.BLP
		if blp < 1 {
			blp = 1
		}
		interf := tShared * a.BLPBlocked / blp
		tAlone := tShared - interf
		if tAlone < tShared*0.05 {
			tAlone = tShared * 0.05
		}
		out[i] = tShared / tAlone
	}
	return out
}
