package baseline

import (
	"math"
	"testing"

	"dasesim/internal/sim"
)

func snap(apps ...sim.AppInterval) *sim.IntervalSnapshot {
	return &sim.IntervalSnapshot{
		IntervalCycles: 50_000,
		NumSMs:         16,
		NumMCs:         6,
		PeakReqPerCyc:  1.0,
		ReqMaxFactor:   0.6,
		Apps:           apps,
	}
}

func TestMISERateRatio(t *testing.T) {
	m := NewMISE()
	// Served 10K over the interval; during its own priority slice (half
	// the interval) it got 8K -> ARSR = 8K/25K, SRSR = 10K/50K.
	a := sim.AppInterval{
		Alpha:      0.9, // memory-intensive: pure ratio
		Served:     10_000,
		PrioServed: 8_000,
		PrioCycles: 25_000,
	}
	got := m.Estimate(snap(a))[0]
	want := (8_000.0 / 25_000) / (10_000.0 / 50_000)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MISE = %v, want %v", got, want)
	}
}

func TestMISEAlphaDiscount(t *testing.T) {
	m := NewMISE()
	a := sim.AppInterval{
		Alpha:      0.3, // below the memory-intensive threshold
		Served:     10_000,
		PrioServed: 8_000,
		PrioCycles: 25_000,
	}
	ratio := (8_000.0 / 25_000) / (10_000.0 / 50_000)
	want := 1 - 0.3 + 0.3*ratio
	got := m.Estimate(snap(a))[0]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MISE with alpha = %v, want %v", got, want)
	}
}

func TestMISEWithoutEpochsReturnsOne(t *testing.T) {
	m := NewMISE()
	a := sim.AppInterval{Alpha: 0.9, Served: 10_000} // PrioCycles == 0
	if got := m.Estimate(snap(a))[0]; got != 1 {
		t.Fatalf("MISE without priority epochs = %v, want 1", got)
	}
}

func TestMISERatioClampedAtOne(t *testing.T) {
	m := NewMISE()
	// Priority slice slower than average (noise): ratio below 1 clamps.
	a := sim.AppInterval{
		Alpha:      0.9,
		Served:     10_000,
		PrioServed: 2_000,
		PrioCycles: 25_000,
	}
	if got := m.Estimate(snap(a))[0]; got != 1 {
		t.Fatalf("MISE sub-unity ratio = %v, want clamp to 1", got)
	}
}

func TestASMCacheCorrectionRaisesVictimEstimate(t *testing.T) {
	mise := NewMISE()
	asm := NewASM()
	// A cache victim: a third of its served requests are contention
	// misses detected by the ATD.
	victim := sim.AppInterval{
		Alpha:      0.9,
		Served:     9_000,
		ELLCMiss:   3_000,
		PrioServed: 6_000,
		PrioCycles: 25_000,
	}
	m := mise.Estimate(snap(victim))[0]
	a := asm.Estimate(snap(victim))[0]
	if a <= m {
		t.Fatalf("ASM (%v) must estimate a higher slowdown than MISE (%v) for a cache victim", a, m)
	}
	// Without contention misses the two coincide.
	clean := victim
	clean.ELLCMiss = 0
	m = mise.Estimate(snap(clean))[0]
	a = asm.Estimate(snap(clean))[0]
	if math.Abs(a-m) > 1e-9 {
		t.Fatalf("ASM (%v) and MISE (%v) must agree when there is no cache interference", a, m)
	}
}

func TestNames(t *testing.T) {
	if NewMISE().Name() != "MISE" || NewASM().Name() != "ASM" {
		t.Fatal("estimator names")
	}
}

func TestEstimatesPerApp(t *testing.T) {
	m := NewMISE()
	out := m.Estimate(snap(sim.AppInterval{}, sim.AppInterval{}, sim.AppInterval{}))
	if len(out) != 3 {
		t.Fatalf("got %d estimates for 3 apps", len(out))
	}
}
