package baseline

import "dasesim/internal/sim"

// Profiled estimates slowdowns from *offline* isolated-profiling data, the
// approach of the QoS/fair-share works the paper contrasts DASE against
// (Aguilera et al., ASP-DAC'14 / ICCD'14): each application's alone DRAM
// bandwidth is measured in a profiling pass, and at run time the slowdown is
// approximated as the ratio of profiled alone bandwidth to observed shared
// bandwidth (the Fig. 2(b) observation).
//
// Its practical flaw — the reason the paper builds a run-time model instead
// — is that data-dependent applications cannot be profiled in advance, and
// the profile goes stale when inputs change. It is provided for comparison.
type Profiled struct {
	// AloneBW[i] is app i's profiled alone bandwidth utilisation (fraction
	// of peak, as in Table III).
	AloneBW []float64
}

// NewProfiled builds the estimator from profiled alone-bandwidth fractions.
func NewProfiled(aloneBW []float64) *Profiled {
	return &Profiled{AloneBW: append([]float64(nil), aloneBW...)}
}

// Name implements core.Estimator.
func (p *Profiled) Name() string { return "Profiled" }

// Estimate implements core.Estimator.
func (p *Profiled) Estimate(snap *sim.IntervalSnapshot) []float64 {
	out := make([]float64, len(snap.Apps))
	for i := range snap.Apps {
		out[i] = 1
		if i >= len(p.AloneBW) || snap.BusCycles == 0 {
			continue
		}
		sharedBW := float64(snap.Apps[i].DataCycles) / float64(snap.BusCycles)
		if sharedBW <= 0 || p.AloneBW[i] <= 0 {
			continue
		}
		s := p.AloneBW[i] / sharedBW
		if s < 1 {
			s = 1
		}
		out[i] = s
	}
	return out
}
