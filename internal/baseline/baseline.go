// Package baseline implements the two CPU slowdown-estimation models the
// paper compares against, ported onto the GPU substrate exactly as the paper
// describes their (mis)fit:
//
//   - MISE (Subramanian et al., HPCA 2013): periodically gives each
//     application's requests the highest memory-controller priority, takes
//     the service rate during the app's own priority epoch as its
//     alone-request-service-rate (ARSR), and estimates
//     slowdown = (1-α) + α · ARSR/SRSR.
//   - ASM (Subramanian et al., MICRO 2015): MISE plus shared-cache
//     interference handling — the request counts on both sides are adjusted
//     by the ATD-detected contention misses.
//
// Both models estimate the slowdown on the *assigned* SMs only: a GPGPU
// application running alone would use all SMs, which neither model accounts
// for, and the priority epochs do not remove most GPU interference — the two
// deficiencies the paper identifies (§3.2, §6).
package baseline

import (
	"dasesim/internal/sim"
)

// MISE estimates slowdowns via highest-priority epoch sampling. The GPU must
// be built with sim.WithPriorityEpochs() so the snapshots carry PrioServed
// and PrioCycles.
type MISE struct {
	// AlphaIntensive is the stall-fraction threshold above which the app
	// is treated as memory-intensive (pure rate ratio, no α discount).
	AlphaIntensive float64
}

// NewMISE returns a MISE estimator with the standard configuration.
func NewMISE() *MISE { return &MISE{AlphaIntensive: 0.7} }

// Name implements core.Estimator.
func (m *MISE) Name() string { return "MISE" }

// Estimate implements core.Estimator.
func (m *MISE) Estimate(snap *sim.IntervalSnapshot) []float64 {
	out := make([]float64, len(snap.Apps))
	tShared := float64(snap.IntervalCycles)
	for i := range snap.Apps {
		a := &snap.Apps[i]
		var srsr, arsr float64
		if tShared > 0 {
			srsr = float64(a.Served) / tShared
		}
		if a.PrioCycles > 0 {
			arsr = float64(a.PrioServed) / float64(a.PrioCycles)
		}
		out[i] = rateRatioSlowdown(a, srsr, arsr, m.AlphaIntensive)
	}
	return out
}

// ASM adds shared-cache interference correction on top of MISE's epoch
// sampling: contention misses detected by the auxiliary tag directory are
// removed from the shared service rate (they would not exist alone) and the
// cache-hit portion is credited to the alone rate.
type ASM struct {
	AlphaIntensive float64
}

// NewASM returns an ASM estimator with the standard configuration.
func NewASM() *ASM { return &ASM{AlphaIntensive: 0.7} }

// Name implements core.Estimator.
func (a *ASM) Name() string { return "ASM" }

// Estimate implements core.Estimator.
func (a *ASM) Estimate(snap *sim.IntervalSnapshot) []float64 {
	out := make([]float64, len(snap.Apps))
	tShared := float64(snap.IntervalCycles)
	for i := range snap.Apps {
		ai := &snap.Apps[i]
		// Contention misses detected by the ATD are useless work: alone
		// they would not exist, so they are removed from both the shared
		// service count and the epoch-extrapolated alone count. Because
		// the subtraction is absolute (not proportional), it raises the
		// estimated slowdown of cache victims, unlike MISE.
		shared := float64(ai.Served) - ai.ELLCMiss
		if shared < 1 {
			shared = 1
		}
		alone := shared
		if ai.PrioCycles > 0 && tShared > 0 {
			alone = float64(ai.PrioServed)*tShared/float64(ai.PrioCycles) - ai.ELLCMiss
			if alone < 1 {
				alone = 1
			}
		}
		var srsr, arsr float64
		if tShared > 0 {
			srsr = shared / tShared
			arsr = alone / tShared
		}
		out[i] = rateRatioSlowdown(ai, srsr, arsr, a.AlphaIntensive)
	}
	return out
}

// rateRatioSlowdown computes (1-α) + α·ARSR/SRSR with the MISE
// memory-intensity special case.
func rateRatioSlowdown(a *sim.AppInterval, srsr, arsr, alphaIntensive float64) float64 {
	if srsr <= 0 || arsr <= 0 {
		return 1
	}
	ratio := arsr / srsr
	if ratio < 1 {
		ratio = 1
	}
	alpha := a.Alpha
	if alpha >= alphaIntensive {
		// Memory-intensive: performance tracks the request service rate
		// directly.
		return ratio
	}
	return 1 - alpha + alpha*ratio
}
