package baseline

import (
	"math"
	"testing"

	"dasesim/internal/sim"
)

func TestSTFMBankTermOnly(t *testing.T) {
	s := NewSTFM()
	if s.Name() != "STFM" {
		t.Fatal("name")
	}
	a := sim.AppInterval{BLP: 40, BLPBlocked: 10}
	out := s.Estimate(snap(a))[0]
	// Tinterf = T*10/40 -> slowdown = 1/(1-0.25).
	want := 1 / (1 - 0.25)
	if math.Abs(out-want) > 1e-9 {
		t.Fatalf("STFM = %v, want %v", out, want)
	}
	// No interference -> 1.
	clean := sim.AppInterval{BLP: 40}
	if got := s.Estimate(snap(clean))[0]; got != 1 {
		t.Fatalf("clean STFM = %v", got)
	}
	// Clamp at 20x when blocked ~ BLP.
	extreme := sim.AppInterval{BLP: 10, BLPBlocked: 10}
	if got := s.Estimate(snap(extreme))[0]; got > 20.0001 {
		t.Fatalf("extreme STFM = %v, want clamp at 20", got)
	}
}
