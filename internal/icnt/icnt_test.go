package icnt

import (
	"testing"
	"testing/quick"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

func newTest() *ICNT {
	cfg := config.Default().ICNT
	return New(cfg, 4, 2, 128)
}

func TestRequestLatency(t *testing.T) {
	ic := newTest()
	cfg := config.Default().ICNT
	r := &memreq.Request{App: 0, SM: 1, Addr: 0x80}
	ic.SendToMem(0, r, 10)
	// One request flit + fixed latency.
	arrive := 10 + 1 + cfg.Latency
	if got := ic.RecvAtMem(0, arrive-1); got != nil {
		t.Fatal("request arrived early")
	}
	if got := ic.RecvAtMem(0, arrive); got != r {
		t.Fatalf("request not delivered at %d", arrive)
	}
	if got := ic.RecvAtMem(0, arrive+1); got != nil {
		t.Fatal("request delivered twice")
	}
}

func TestReplySerialization(t *testing.T) {
	ic := newTest()
	cfg := config.Default().ICNT
	// Two replies from the same partition to the same SM: the second is
	// serialized behind the first on the injection port.
	r1 := &memreq.Request{SM: 0, Addr: 0x80}
	r2 := &memreq.Request{SM: 0, Addr: 0x100}
	ic.SendToSM(0, r1, 0)
	ic.SendToSM(0, r2, 0)
	flits := uint64((128 + cfg.RequestBytes + cfg.FlitBytes - 1) / cfg.FlitBytes)
	first := flits + cfg.Latency
	second := 2*flits + cfg.Latency
	if got := ic.RecvAtSM(0, first); got != r1 {
		t.Fatalf("first reply not delivered at %d", first)
	}
	if got := ic.RecvAtSM(0, second-1); got != nil {
		t.Fatal("second reply not serialized")
	}
	if got := ic.RecvAtSM(0, second); got != r2 {
		t.Fatalf("second reply not delivered at %d", second)
	}
}

func TestQueueBounds(t *testing.T) {
	cfg := config.Default().ICNT
	cfg.InQueueDepth = 2
	ic := New(cfg, 1, 1, 128)
	if !ic.CanSendToMem(0) {
		t.Fatal("empty queue should accept")
	}
	ic.SendToMem(0, &memreq.Request{Addr: 0x80}, 0)
	ic.SendToMem(0, &memreq.Request{Addr: 0x100}, 0)
	if ic.CanSendToMem(0) {
		t.Fatal("full queue should refuse")
	}
	// Draining frees space.
	for now := uint64(0); now < 100; now++ {
		if ic.RecvAtMem(0, now) != nil && ic.CanSendToMem(0) {
			return
		}
	}
	t.Fatal("queue never drained")
}

func TestFIFOOrderProperty(t *testing.T) {
	cfg := config.Default().ICNT
	cfg.InQueueDepth = 64
	f := func(n uint8) bool {
		count := int(n%32) + 1
		ic := New(cfg, 1, 1, 128)
		var sent []*memreq.Request
		for i := 0; i < count; i++ {
			r := &memreq.Request{Addr: uint64(i) * 128, Warp: i}
			ic.SendToMem(0, r, uint64(i))
			sent = append(sent, r)
		}
		var got []*memreq.Request
		for now := uint64(0); now < 10000 && len(got) < count; now++ {
			if r := ic.RecvAtMem(0, now); r != nil {
				got = append(got, r)
			}
		}
		if len(got) != count {
			return false
		}
		for i := range got {
			if got[i] != sent[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPeek(t *testing.T) {
	ic := newTest()
	if ic.PeekAtMem(0, 100) {
		t.Fatal("peek on empty queue")
	}
	ic.SendToMem(0, &memreq.Request{Addr: 0x80}, 0)
	if ic.PeekAtMem(0, 0) {
		t.Fatal("peek before arrival")
	}
	if !ic.PeekAtMem(0, 100) {
		t.Fatal("peek after arrival")
	}
}

func TestStats(t *testing.T) {
	ic := newTest()
	ic.SendToMem(0, &memreq.Request{Addr: 0x80}, 0)
	ic.SendToSM(0, &memreq.Request{SM: 0, Addr: 0x80}, 0)
	if ic.ReqSent != 1 || ic.RepSent != 1 {
		t.Fatalf("stats: req=%d rep=%d", ic.ReqSent, ic.RepSent)
	}
}
