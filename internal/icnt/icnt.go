// Package icnt models the SM <-> memory-partition crossbar of Table II: one
// crossbar per direction, fixed traversal latency, and per-port serialization
// bandwidth (32-byte flits). Requests are single-flit command packets; read
// replies carry a 128-byte line and occupy their injection port for several
// flit cycles, which is what makes reply bandwidth a contended resource.
package icnt

import (
	"fmt"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
	"dasesim/internal/ring"
)

type entry struct {
	req     *memreq.Request
	arrives uint64
}

// fifo is a bounded queue of in-flight packets ordered by send time, backed
// by a ring sized to the configured depth so steady-state traffic never
// reallocates or compacts.
type fifo struct {
	q     *ring.Buffer[entry]
	depth int
}

func newFifo(depth int) fifo {
	return fifo{q: ring.New[entry](depth), depth: depth}
}

func (f *fifo) len() int { return f.q.Len() }

func (f *fifo) full() bool { return f.q.Len() >= f.depth }

func (f *fifo) push(r *memreq.Request, arrives uint64) {
	f.q.PushBack(entry{r, arrives})
}

// pop returns the head packet if it has arrived by now.
func (f *fifo) pop(now uint64) *memreq.Request {
	if f.q.Empty() {
		return nil
	}
	e := f.q.Front()
	if e.arrives > now {
		return nil
	}
	f.q.PopFront()
	return e.req
}

// peek reports whether a packet is available at now without removing it.
func (f *fifo) peek(now uint64) bool {
	return !f.q.Empty() && f.q.Front().arrives <= now
}

// ICNT is the two-direction crossbar.
type ICNT struct {
	cfg config.ICNTConfig

	toMem []fifo // one per memory partition
	toSM  []fifo // one per SM

	memPortFree []uint64 // per-partition reply-injection port next-free cycle
	smPortFree  []uint64 // per-SM request-injection port next-free cycle

	replyFlits uint64 // serialization cycles for a data reply
	reqFlits   uint64 // serialization cycles for a request packet

	// Stats
	ReqSent, RepSent uint64
}

// New builds a crossbar connecting numSMs SMs to numParts partitions,
// moving lineBytes-sized reply payloads.
func New(cfg config.ICNTConfig, numSMs, numParts, lineBytes int) *ICNT {
	ic := &ICNT{
		cfg:         cfg,
		toMem:       make([]fifo, numParts),
		toSM:        make([]fifo, numSMs),
		memPortFree: make([]uint64, numParts),
		smPortFree:  make([]uint64, numSMs),
	}
	for i := range ic.toMem {
		ic.toMem[i] = newFifo(cfg.InQueueDepth)
	}
	for i := range ic.toSM {
		ic.toSM[i] = newFifo(cfg.OutQueueDepth)
	}
	ic.reqFlits = uint64((cfg.RequestBytes + cfg.FlitBytes - 1) / cfg.FlitBytes)
	ic.replyFlits = uint64((lineBytes + cfg.RequestBytes + cfg.FlitBytes - 1) / cfg.FlitBytes)
	return ic
}

// CanSendToMem reports whether partition part can accept another request.
func (ic *ICNT) CanSendToMem(part int) bool { return !ic.toMem[part].full() }

// SendToMem injects a request from its SM toward partition part at cycle
// now. The caller must have checked CanSendToMem.
func (ic *ICNT) SendToMem(part int, r *memreq.Request, now uint64) {
	start := now
	if ic.smPortFree[r.SM] > start {
		start = ic.smPortFree[r.SM]
	}
	ic.smPortFree[r.SM] = start + ic.reqFlits
	ic.toMem[part].push(r, start+ic.reqFlits+ic.cfg.Latency)
	ic.ReqSent++
}

// RecvAtMem pops the next request that has reached partition part by now,
// or nil.
func (ic *ICNT) RecvAtMem(part int, now uint64) *memreq.Request {
	return ic.toMem[part].pop(now)
}

// PeekAtMem reports whether a request is waiting at partition part.
func (ic *ICNT) PeekAtMem(part int, now uint64) bool { return ic.toMem[part].peek(now) }

// CanSendToSM reports whether the reply queue toward the SM has room.
func (ic *ICNT) CanSendToSM(sm int) bool { return !ic.toSM[sm].full() }

// SendToSM injects a data reply from partition part toward the request's SM.
// The caller must have checked CanSendToSM.
func (ic *ICNT) SendToSM(part int, r *memreq.Request, now uint64) {
	start := now
	if ic.memPortFree[part] > start {
		start = ic.memPortFree[part]
	}
	ic.memPortFree[part] = start + ic.replyFlits
	ic.toSM[r.SM].push(r, start+ic.replyFlits+ic.cfg.Latency)
	ic.RepSent++
}

// RecvAtSM pops the next reply that has reached the SM by now, or nil.
func (ic *ICNT) RecvAtSM(sm int, now uint64) *memreq.Request {
	return ic.toSM[sm].pop(now)
}

// InFlightToSM returns how many reply packets are buffered toward the SM
// (arrived or still traversing). The simulator uses it to skip the receive
// scan for idle ports.
func (ic *ICNT) InFlightToSM(sm int) int { return ic.toSM[sm].len() }

// ForEachInFlight calls fn for every request buffered in the crossbar, in
// either direction — the interconnect's contribution to the simulator's
// live-request set.
func (ic *ICNT) ForEachInFlight(fn func(*memreq.Request)) {
	for i := range ic.toMem {
		ic.toMem[i].q.Do(func(e entry) { fn(e.req) })
	}
	for i := range ic.toSM {
		ic.toSM[i].q.Do(func(e entry) { fn(e.req) })
	}
}

// CheckInvariants verifies every port FIFO honours its configured depth and
// the ring structural contract (unused slots zeroed, so popped packets never
// pin their requests). O(ports × depth); for debug runs, not the hot path.
func (ic *ICNT) CheckInvariants() error {
	zero := func(e entry) bool { return e.req == nil && e.arrives == 0 }
	for i := range ic.toMem {
		if f := &ic.toMem[i]; f.len() > f.depth {
			return fmt.Errorf("icnt: toMem[%d] holds %d packets, depth %d", i, f.len(), f.depth)
		}
		if err := ic.toMem[i].q.CheckInvariants(zero); err != nil {
			return fmt.Errorf("icnt: toMem[%d]: %w", i, err)
		}
	}
	for i := range ic.toSM {
		if f := &ic.toSM[i]; f.len() > f.depth {
			return fmt.Errorf("icnt: toSM[%d] holds %d packets, depth %d", i, f.len(), f.depth)
		}
		if err := ic.toSM[i].q.CheckInvariants(zero); err != nil {
			return fmt.Errorf("icnt: toSM[%d]: %w", i, err)
		}
	}
	return nil
}
