// Package memreq defines the memory-request currency that flows between the
// SMs, the interconnect, the L2 slices and the DRAM controllers, plus the
// address-mapping helpers shared by all of them.
package memreq

import "fmt"

// AppID identifies one concurrently running application (kernel). IDs are
// dense and start at 0; InvalidApp marks unowned resources.
type AppID int

// InvalidApp is the AppID of resources not owned by any application.
const InvalidApp AppID = -1

// Kind distinguishes read and write traffic.
type Kind uint8

const (
	// Read is a load that must return data to the SM.
	Read Kind = iota
	// Write is a store; it is acknowledged but returns no data.
	Write
)

func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Request is one cache-line-sized memory transaction. A single warp memory
// instruction may fan out into several Requests (one per distinct line).
type Request struct {
	App    AppID
	SM     int    // issuing SM index
	Warp   int    // issuing warp slot within the SM
	Addr   uint64 // line-aligned byte address
	Kind   Kind
	Issued uint64 // core cycle at which the SM issued the request

	// L2Miss is set by the partition when the request missed in L2 and went
	// to DRAM; used for statistics only.
	L2Miss bool

	// BankEnter is the cycle the request was scheduled into a DRAM bank;
	// used to account per-request bank occupancy (TimeRequest counter).
	BankEnter uint64

	// Row caches AddrMap.Row(Addr), filled by the DRAM controller at
	// enqueue so the FR-FCFS scheduler's per-cycle queue scans compare a
	// field instead of redoing the row-address division.
	Row uint64
}

func (r *Request) String() string {
	return fmt.Sprintf("req{app=%d sm=%d warp=%d addr=%#x %s}", r.App, r.SM, r.Warp, r.Addr, r.Kind)
}

// AddrMap translates a line address into (partition, bank, row, cache set)
// coordinates, GPU-style: consecutive lines interleave across memory
// partitions; within a partition, consecutive lines fill the columns of one
// row of one bank (preserving row-buffer locality for streaming accesses);
// banks interleave at row granularity with a row-swizzle so different rows
// of a stream occupy different banks (bank-level parallelism).
type AddrMap struct {
	LineBytes     int
	NumPartitions int
	NumBanks      int
	RowBytes      int

	lineShift    uint
	linesPerRow  uint64 // row-buffer capacity in lines
	rowsPerSwizz uint64
}

// NewAddrMap builds an address map. LineBytes and RowBytes must be powers of
// two; NumPartitions and NumBanks may be arbitrary positive counts.
func NewAddrMap(lineBytes, numPartitions, numBanks, rowBytes int) AddrMap {
	m := AddrMap{
		LineBytes:     lineBytes,
		NumPartitions: numPartitions,
		NumBanks:      numBanks,
		RowBytes:      rowBytes,
	}
	m.lineShift = log2(uint64(lineBytes))
	m.linesPerRow = uint64(rowBytes / lineBytes)
	if m.linesPerRow == 0 {
		m.linesPerRow = 1
	}
	return m
}

func log2(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// LineAddr aligns a byte address down to its cache line.
func (m AddrMap) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(m.LineBytes) - 1)
}

// LineIndex returns the global line number of an address.
func (m AddrMap) LineIndex(addr uint64) uint64 { return addr >> m.lineShift }

// chanLine returns the within-partition line index of an address.
func (m AddrMap) chanLine(addr uint64) uint64 {
	return (addr >> m.lineShift) / uint64(m.NumPartitions)
}

// Partition returns the memory partition servicing the address. Consecutive
// lines interleave across partitions, with a XOR fold of coarse-grained bits
// (changing every ~256 KB) so large-stride streams still spread out without
// breaking sequential-run locality.
func (m AddrMap) Partition(addr uint64) int {
	line := addr >> m.lineShift
	fold := line ^ (line >> 11)
	return int(fold % uint64(m.NumPartitions))
}

// Bank returns the DRAM bank within the partition. Banks interleave at row
// granularity, XOR-swizzled by the row index so that row-strided patterns
// spread across banks.
func (m AddrMap) Bank(addr uint64) int {
	rowSeq := m.chanLine(addr) / m.linesPerRow
	b := rowSeq ^ (rowSeq / uint64(m.NumBanks))
	return int(b % uint64(m.NumBanks))
}

// Row returns the DRAM row within the bank.
func (m AddrMap) Row(addr uint64) uint64 {
	return m.chanLine(addr) / m.linesPerRow / uint64(m.NumBanks)
}

// CacheSet returns the set index for a cache with the given number of sets
// (must be a power of two).
func (m AddrMap) CacheSet(addr uint64, sets int) int {
	line := addr >> m.lineShift
	return int((line ^ line>>10) & uint64(sets-1))
}
