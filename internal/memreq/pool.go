package memreq

// Pool is a free-list recycler for Requests. The cycle engine allocates one
// Request per memory access on its hot path; recycling them once their reply
// is delivered (or their write completes) makes the steady-state inner loop
// allocation-free.
//
// The pool is deliberately not concurrency-safe: a GPU simulation is
// single-goroutine, and one pool is shared by all SMs and partitions of one
// GPU. Requests handed out by Get are fully zeroed, so pooling cannot leak
// state (L2Miss, BankEnter, Row, ...) between the transactions that reuse a
// slot — a hard requirement for the engine's byte-identical determinism
// contract.
type Pool struct {
	free []*Request
}

// poolChunk is how many Requests a dry pool allocates at once. Chunked
// backing arrays keep recycled requests contiguous in memory (cache-friendly)
// and amortise allocator round-trips during warm-up.
const poolChunk = 64

// Get returns a zeroed Request, reusing a recycled one when available.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	chunk := make([]Request, poolChunk)
	for i := 1; i < poolChunk; i++ {
		p.free = append(p.free, &chunk[i])
	}
	return &chunk[0]
}

// Put recycles a Request. The caller must not retain the pointer; the request
// is zeroed immediately so stale fields cannot survive into its next use.
func (p *Pool) Put(r *Request) {
	*r = Request{}
	p.free = append(p.free, r)
}

// Len reports how many recycled requests are currently free (test hook).
func (p *Pool) Len() int { return len(p.free) }
