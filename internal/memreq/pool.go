package memreq

import "fmt"

// Pool is a free-list recycler for Requests. The cycle engine allocates one
// Request per memory access on its hot path; recycling them once their reply
// is delivered (or their write completes) makes the steady-state inner loop
// allocation-free.
//
// The pool is deliberately not concurrency-safe: the sequential cycle engine
// shares one pool across all SMs and partitions of one GPU, and the parallel
// engine gives every SM and partition a private pool so no pool is ever
// touched from two goroutines. Requests handed out by Get are fully zeroed,
// so pooling cannot leak
// state (L2Miss, BankEnter, Row, ...) between the transactions that reuse a
// slot — a hard requirement for the engine's byte-identical determinism
// contract.
//
// EnableChecks switches the pool into a debug mode that enforces that
// contract at run time (double-Put, skipped zeroing, writes after Put); the
// default mode adds a single nil check per operation and no allocations.
type Pool struct {
	free []*Request

	// checks is non-nil in debug mode (EnableChecks); all hygiene state
	// lives behind it so the production pool stays two slices of machinery.
	checks *poolChecks
}

// poolChecks is the hygiene state of a checked pool.
type poolChecks struct {
	// freeSet holds every request the pool currently owns (free list or
	// quarantine); a Put of a member is a double-Put.
	freeSet map[*Request]struct{}
	// gens counts completed lifetimes per request pointer: bumped on every
	// Put. The simulator's invariant checker reads it to label requests when
	// reporting a pointer that is both live in the engine and owned by the
	// pool (a use-after-Put).
	gens map[*Request]uint64
	// quarantine delays reuse of Put requests so a stale writer hits a
	// request the pool still owns — the rotation check below turns that
	// write into a loud failure instead of silent state corruption.
	quarantine []*Request
}

// poolChunk is how many Requests a dry pool allocates at once. Chunked
// backing arrays keep recycled requests contiguous in memory (cache-friendly)
// and amortise allocator round-trips during warm-up.
const poolChunk = 64

// quarantineDepth is how many Put requests a checked pool holds back from
// reuse; deeper quarantine widens the window in which a write-after-Put is
// caught at the offending request rather than as downstream corruption.
const quarantineDepth = 256

// Get returns a zeroed Request, reusing a recycled one when available.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		if p.checks != nil {
			p.checks.take(r)
		}
		return r
	}
	chunk := make([]Request, poolChunk)
	for i := 1; i < poolChunk; i++ {
		p.free = append(p.free, &chunk[i])
	}
	if p.checks != nil {
		for i := 1; i < poolChunk; i++ {
			p.checks.freeSet[&chunk[i]] = struct{}{}
		}
	}
	return &chunk[0]
}

// Put recycles a Request. The caller must not retain the pointer; the request
// is zeroed immediately so stale fields cannot survive into its next use.
func (p *Pool) Put(r *Request) {
	if p.checks != nil {
		p.checks.put(p, r)
		return
	}
	*r = Request{}
	p.free = append(p.free, r)
}

// Len reports how many recycled requests are currently free (test hook).
func (p *Pool) Len() int { return len(p.free) }

// EnableChecks switches the pool into hygiene-checking mode:
//
//   - a Put of a request the pool already owns panics (double-Put);
//   - Put requests pass through a fixed-depth quarantine before becoming
//     reusable, and leave it only if still fully zeroed, so a caller that
//     wrote to a request after Put panics at the rotation instead of
//     corrupting an unrelated later transaction;
//   - Get verifies the handed-out request is fully zeroed, catching a Put
//     path that skipped (or partially skipped) the zeroing.
//
// Checking changes which pointers are recycled when, but never the values the
// engine observes, so simulation results are byte-identical either way. It is
// not meant for production hot paths; the simulator enables it under
// sim.WithInvariantChecks.
func (p *Pool) EnableChecks() {
	if p.checks != nil {
		return
	}
	p.checks = &poolChecks{
		freeSet: make(map[*Request]struct{}, len(p.free)+quarantineDepth),
		gens:    map[*Request]uint64{},
	}
	for _, r := range p.free {
		p.checks.freeSet[r] = struct{}{}
	}
}

// ChecksEnabled reports whether the pool is in hygiene-checking mode.
func (p *Pool) ChecksEnabled() bool { return p.checks != nil }

// Owned reports whether the checked pool currently owns r (free or
// quarantined) — i.e. whether handing r to the engine would be a
// use-after-Put. Always false when checks are disabled.
func (p *Pool) Owned(r *Request) bool {
	if p.checks == nil {
		return false
	}
	_, ok := p.checks.freeSet[r]
	return ok
}

// Generation returns how many completed lifetimes the checked pool has seen
// for r (0 when checks are disabled or r was never Put).
func (p *Pool) Generation(r *Request) uint64 {
	if p.checks == nil {
		return 0
	}
	return p.checks.gens[r]
}

// CheckInvariants scans a checked pool for requests that were written to
// after Put but have not yet reached the quarantine rotation check. It
// returns nil for unchecked pools.
func (p *Pool) CheckInvariants() error {
	if p.checks == nil {
		return nil
	}
	for _, r := range p.checks.quarantine {
		if *r != (Request{}) {
			return fmt.Errorf("memreq: pool hygiene: quarantined request %p (gen %d) was written after Put: %+v", r, p.checks.gens[r], r)
		}
	}
	for _, r := range p.free {
		if r != nil && *r != (Request{}) {
			return fmt.Errorf("memreq: pool hygiene: free request %p (gen %d) is not zeroed: %+v", r, p.checks.gens[r], r)
		}
	}
	return nil
}

// take records that r left the pool, verifying it is handed out zeroed.
func (c *poolChecks) take(r *Request) {
	delete(c.freeSet, r)
	if *r != (Request{}) {
		panic(fmt.Sprintf("memreq: pool hygiene: Get returned a non-zero request %p (gen %d): %+v — Put skipped zeroing or the request was written after Put", r, c.gens[r], r))
	}
}

// put runs the checked Put: double-Put detection, zeroing, quarantine
// rotation with a written-after-Put check on the request leaving quarantine.
func (c *poolChecks) put(p *Pool, r *Request) {
	if _, dup := c.freeSet[r]; dup {
		panic(fmt.Sprintf("memreq: pool hygiene: double Put of request %p (gen %d)", r, c.gens[r]))
	}
	c.freeSet[r] = struct{}{}
	c.gens[r]++
	*r = Request{}
	c.quarantine = append(c.quarantine, r)
	if len(c.quarantine) > quarantineDepth {
		old := c.quarantine[0]
		copy(c.quarantine, c.quarantine[1:])
		c.quarantine = c.quarantine[:len(c.quarantine)-1]
		if *old != (Request{}) {
			panic(fmt.Sprintf("memreq: pool hygiene: request %p (gen %d) was written after Put: %+v", old, c.gens[old], old))
		}
		p.free = append(p.free, old)
	}
}
