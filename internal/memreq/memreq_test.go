package memreq

import (
	"testing"
	"testing/quick"
)

func defaultMap() AddrMap {
	return NewAddrMap(128, 6, 16, 2048)
}

func TestLineAddrAligns(t *testing.T) {
	m := defaultMap()
	if got := m.LineAddr(0x12345); got != 0x12345&^uint64(127) {
		t.Fatalf("LineAddr(0x12345) = %#x", got)
	}
	if got := m.LineAddr(0x80); got != 0x80 {
		t.Fatalf("aligned address changed: %#x", got)
	}
}

func TestCoordinateRangesProperty(t *testing.T) {
	m := defaultMap()
	f := func(addr uint64) bool {
		p := m.Partition(addr)
		b := m.Bank(addr)
		s := m.CacheSet(addr, 256)
		return p >= 0 && p < 6 && b >= 0 && b < 16 && s >= 0 && s < 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSameLineSameCoordinatesProperty(t *testing.T) {
	m := defaultMap()
	f := func(addr uint64, off uint8) bool {
		line := m.LineAddr(addr)
		within := line + uint64(off)%128
		return m.Partition(line) == m.Partition(within) &&
			m.Bank(line) == m.Bank(within) &&
			m.Row(line) == m.Row(within)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialLinesInterleavePartitions: a long sequential stream must
// spread evenly across partitions (the GPU-style channel interleave).
func TestSequentialLinesInterleavePartitions(t *testing.T) {
	m := defaultMap()
	counts := make([]int, 6)
	const n = 6 * 1000
	for i := 0; i < n; i++ {
		counts[m.Partition(uint64(i)*128)]++
	}
	for p, c := range counts {
		if c < n/6-n/60 || c > n/6+n/60 {
			t.Errorf("partition %d got %d of %d lines (expected ~%d)", p, c, n, n/6)
		}
	}
}

// TestRowLocalityWithinPartition: consecutive lines landing in the same
// partition must mostly share a (bank,row) pair so streams get row hits.
func TestRowLocalityWithinPartition(t *testing.T) {
	m := defaultMap()
	type coord struct {
		bank int
		row  uint64
	}
	transitions, samePair := 0, 0
	var prev map[int]coord = map[int]coord{}
	for i := 0; i < 96*50; i++ {
		addr := uint64(i) * 128
		p := m.Partition(addr)
		c := coord{m.Bank(addr), m.Row(addr)}
		if pc, ok := prev[p]; ok {
			transitions++
			if pc == c {
				samePair++
			}
		}
		prev[p] = c
	}
	frac := float64(samePair) / float64(transitions)
	if frac < 0.8 {
		t.Fatalf("sequential stream keeps same bank/row only %.2f of transitions", frac)
	}
}

// TestBankSpreadAcrossRows: different rows of a stream must use different
// banks (bank-level parallelism).
func TestBankSpreadAcrossRows(t *testing.T) {
	m := defaultMap()
	banks := map[int]bool{}
	// Walk one partition's address space in row-sized steps.
	for i := 0; i < 64; i++ {
		addr := uint64(i) * 2048 * 6 // one row per step, per partition stride
		banks[m.Bank(addr)] = true
	}
	if len(banks) < 8 {
		t.Fatalf("row-strided walk touched only %d banks", len(banks))
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Kind.String broken")
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{App: 1, SM: 2, Warp: 3, Addr: 0x80, Kind: Write}
	if r.String() == "" {
		t.Fatal("empty request string")
	}
}
