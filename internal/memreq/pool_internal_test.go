package memreq

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("expected panic containing %q, got %v", substr, r)
		}
	}()
	fn()
}

// TestPoolChecksDoublePut verifies a checked pool panics when the same
// request is Put twice without an intervening Get.
func TestPoolChecksDoublePut(t *testing.T) {
	var p Pool
	p.EnableChecks()
	r := p.Get()
	p.Put(r)
	mustPanic(t, "double Put", func() { p.Put(r) })
}

// TestPoolChecksWriteAfterPut models the use-after-Put bug class: a component
// keeps a pointer past Put and writes through it. The quarantine rotation
// must report the write when the request's hold-back expires.
func TestPoolChecksWriteAfterPut(t *testing.T) {
	var p Pool
	p.EnableChecks()
	stale := p.Get()
	p.Put(stale)
	stale.Addr = 0xdead // the bug: writing through a recycled pointer

	if err := p.CheckInvariants(); err == nil {
		t.Error("CheckInvariants missed the write-after-Put while quarantined")
	}
	mustPanic(t, "written after Put", func() {
		// Rotate the quarantine until the stale request reaches its
		// hold-back limit and the rotation check fires.
		for i := 0; i <= quarantineDepth; i++ {
			p.Put(p.Get())
		}
	})
}

// TestPoolChecksCatchesSkippedZeroing models the deliberately-broken mutation
// from the validation plan: a Put path that forgets to zero the request. The
// pool cannot un-export its own zeroing, so the test plants the same end
// state — a non-zero request on the free list — and verifies both detection
// points (the periodic scan and the Get-side check) catch it.
func TestPoolChecksCatchesSkippedZeroing(t *testing.T) {
	var p Pool
	p.EnableChecks()
	r := p.Get()
	p.Put(r)
	r.L2Miss = true // as if `*r = Request{}` had been dropped from Put
	if err := p.CheckInvariants(); err == nil {
		t.Error("CheckInvariants missed the non-zero pooled request")
	}
	mustPanic(t, "pool hygiene", func() {
		// Recycle until the dirty request reaches a detection point — the
		// quarantine rotation or, at the latest, the Get-side zeroing check.
		for i := 0; i <= quarantineDepth+poolChunk; i++ {
			p.Put(p.Get())
		}
	})
}

// TestPoolChecksPreserveValues verifies checking mode is observationally
// equivalent: a checked pool still hands out zeroed requests and Len stays
// coherent with the quarantine holding requests back.
func TestPoolChecksPreserveValues(t *testing.T) {
	var p Pool
	p.EnableChecks()
	if !p.ChecksEnabled() {
		t.Fatal("ChecksEnabled false after EnableChecks")
	}
	r := p.Get()
	r.Addr = 4096
	p.Put(r)
	if !p.Owned(r) {
		t.Error("pool does not own a request it quarantined")
	}
	if g := p.Generation(r); g != 1 {
		t.Errorf("generation after one Put = %d, want 1", g)
	}
	if got := p.Get(); *got != (Request{}) {
		t.Errorf("checked Get returned non-zero request %+v", got)
	}
}
