package memreq_test

import (
	"reflect"
	"strings"
	"testing"

	"dasesim/internal/memreq"
	"dasesim/internal/refmodel"
)

// nonZero returns a non-zero value of type t, so the hygiene tests below
// cover every Request field automatically — including ones added after this
// test was written.
func nonZero(t reflect.Type) reflect.Value {
	v := reflect.New(t).Elem()
	switch t.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.String:
		v.SetString("x")
	default:
		panic("nonZero: unsupported Request field kind " + t.Kind().String())
	}
	return v
}

// dirtyRequest returns a Request with every field set to a non-zero value.
func dirtyRequest(t *testing.T) *memreq.Request {
	t.Helper()
	r := &memreq.Request{}
	rv := reflect.ValueOf(r).Elem()
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).Set(nonZero(rv.Field(i).Type()))
	}
	if *r == (memreq.Request{}) {
		t.Fatal("dirtyRequest produced a zero Request")
	}
	return r
}

// TestPoolPutZeroesAllFields dirties every Request field via reflection and
// verifies Put resets each one — the contract that keeps pooled requests from
// leaking state between the transactions that reuse a slot.
func TestPoolPutZeroesAllFields(t *testing.T) {
	var p memreq.Pool
	r := dirtyRequest(t)
	p.Put(r)
	rv := reflect.ValueOf(r).Elem()
	for i := 0; i < rv.NumField(); i++ {
		if !rv.Field(i).IsZero() {
			t.Errorf("Put left field %s = %v", rv.Type().Field(i).Name, rv.Field(i))
		}
	}
}

// TestPoolGetAfterPutFullyReset recycles a dirtied request through the pool
// until the same pointer comes back and verifies it returns fully zeroed.
func TestPoolGetAfterPutFullyReset(t *testing.T) {
	var p memreq.Pool
	r := p.Get()
	rv := reflect.ValueOf(r).Elem()
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).Set(nonZero(rv.Field(i).Type()))
	}
	p.Put(r)
	// The free list is LIFO, so draining at most Len gets the pointer back.
	for i, n := 0, p.Len(); i < n; i++ {
		got := p.Get()
		if *got != (memreq.Request{}) {
			t.Fatalf("Get %d returned non-zero request %+v", i, got)
		}
		if got == r {
			return
		}
	}
	t.Fatal("recycled pointer never came back out of the pool")
}

// FuzzPool drives a hygiene-checked Pool and the allocate-fresh
// refmodel.FreshSource it replaced with one Get/mutate/Put stream, verifying
// a recycled request is indistinguishable from a freshly allocated one at
// every step. Ops: byte%3 — 0 Get, 1 mutate live request (operand byte),
// 2 Put live request (operand byte).
func FuzzPool(f *testing.F) {
	f.Add([]byte(strings.Repeat("0", 70)))     // Gets past one chunk, no reuse
	f.Add([]byte("0001a1b2a0001c2b2a"))        // get/mutate/put churn
	f.Add([]byte(strings.Repeat("01a2a", 80))) // immediate recycling
	f.Add([]byte(strings.Repeat("02a", 300)))  // rotate the full quarantine
	f.Fuzz(func(t *testing.T, data []byte) {
		var p memreq.Pool
		p.EnableChecks()
		var fresh refmodel.FreshSource
		type pair struct{ pooled, ref *memreq.Request }
		var live []pair
		for i := 0; i < len(data); i++ {
			switch data[i] % 3 {
			case 0: // Get
				a, b := p.Get(), fresh.Get()
				if *a != (memreq.Request{}) {
					t.Fatalf("pool Get returned non-zero request %+v", a)
				}
				if *a != *b {
					t.Fatalf("Get: pooled %+v, fresh %+v", a, b)
				}
				live = append(live, pair{a, b})
			case 1: // mutate one live request, identically on both sides
				if i+1 >= len(data) || len(live) == 0 {
					continue
				}
				i++
				k := int(data[i]) % len(live)
				v := uint64(data[i]) + uint64(i)
				pr := live[k]
				for _, r := range []*memreq.Request{pr.pooled, pr.ref} {
					r.App = memreq.AppID(v % 4)
					r.SM = int(v % 16)
					r.Warp = int(v % 48)
					r.Addr = v * 128
					r.Kind = memreq.Kind(v % 2)
					r.Issued = v
					r.L2Miss = v%3 == 0
					r.BankEnter = v >> 1
					r.Row = v >> 3
				}
			case 2: // Put one live request
				if i+1 >= len(data) || len(live) == 0 {
					continue
				}
				i++
				k := int(data[i]) % len(live)
				p.Put(live[k].pooled)
				fresh.Put(live[k].ref)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			for _, pr := range live {
				if *pr.pooled != *pr.ref {
					t.Fatalf("live request diverged: pooled %+v, fresh %+v", pr.pooled, pr.ref)
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
