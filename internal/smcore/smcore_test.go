package smcore

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/memreq"
)

// fakeSource hands out a bounded number of blocks of a test kernel.
type fakeSource struct {
	p        kernels.Profile
	blocks   int
	next     int
	finished int
}

func (f *fakeSource) WarpsPerBlock() int { return f.p.WarpsPerBlock }

func (f *fakeSource) NextBlock() ([]*kernels.WarpStream, bool) {
	if f.next >= f.blocks {
		return nil, false
	}
	id := f.next
	f.next++
	out := make([]*kernels.WarpStream, f.p.WarpsPerBlock)
	for w := range out {
		out[w] = kernels.NewWarpStream(&f.p, 1<<40, uint64(id), w, 7)
	}
	return out, true
}

func (f *fakeSource) BlockFinished() { f.finished++ }

func computeProfile() kernels.Profile {
	return kernels.Profile{
		Name: "test", Abbr: "TT",
		MemFrac: 0, ComputeLat: 2, CoalescedLines: 1,
		Pattern: kernels.BlockStream, SeqRun: 8,
		FootprintLines: 1024, WarpsPerBlock: 4, Blocks: 100, InstPerWarp: 50,
	}
}

func memProfile() kernels.Profile {
	p := computeProfile()
	p.MemFrac = 0.2
	return p
}

func newSM() *SM {
	cfg := config.Default()
	amap := memreq.NewAddrMap(cfg.L1.LineBytes, cfg.NumMCs, cfg.Mem.NumBanks, cfg.Mem.RowBytes)
	return New(0, cfg, amap, nil)
}

func TestPureComputeBlockRetires(t *testing.T) {
	sm := newSM()
	src := &fakeSource{p: computeProfile(), blocks: 1}
	sm.Assign(0, src)
	for now := uint64(0); now < 5000; now++ {
		sm.Cycle(now)
		if now > 0 && sm.Idle() {
			break
		}
	}
	if !sm.Idle() {
		t.Fatal("compute-only block never retired")
	}
	if src.finished != 1 {
		t.Fatalf("BlockFinished called %d times", src.finished)
	}
	st := sm.Stats()
	if st.Issued != 4*50 {
		t.Fatalf("issued %d instructions, want %d", st.Issued, 4*50)
	}
	if st.StallUnits != 0 {
		t.Fatalf("pure compute accrued %v memory-stall units", st.StallUnits)
	}
	if st.BlocksDone != 1 {
		t.Fatalf("BlocksDone = %d", st.BlocksDone)
	}
}

func TestResidencyLimits(t *testing.T) {
	sm := newSM()
	src := &fakeSource{p: computeProfile(), blocks: 100}
	sm.Assign(0, src)
	sm.Cycle(0)
	// MaxBlocks = 8, warps allow 48/4 = 12 -> 8 resident.
	if sm.ResidentBlocks() != 8 {
		t.Fatalf("resident blocks = %d, want 8", sm.ResidentBlocks())
	}
	// Wide blocks are warp-limited instead.
	sm2 := newSM()
	wide := computeProfile()
	wide.WarpsPerBlock = 20 // 48/20 = 2 resident
	src2 := &fakeSource{p: wide, blocks: 100}
	sm2.Assign(0, src2)
	sm2.Cycle(0)
	if sm2.ResidentBlocks() != 2 {
		t.Fatalf("wide resident blocks = %d, want 2", sm2.ResidentBlocks())
	}
}

func TestMemoryRequestsFlow(t *testing.T) {
	sm := newSM()
	src := &fakeSource{p: memProfile(), blocks: 2}
	sm.Assign(0, src)
	var outbound []*memreq.Request
	for now := uint64(0); now < 200; now++ {
		sm.Cycle(now)
		for sm.OutboxLen() > 0 {
			outbound = append(outbound, sm.PopOutbox())
		}
	}
	if len(outbound) == 0 {
		t.Fatal("memory kernel issued no requests")
	}
	for _, r := range outbound {
		if r.App != 0 || r.SM != 0 {
			t.Fatalf("bad request attribution: %v", r)
		}
		if r.Addr%128 != 0 {
			t.Fatalf("unaligned request address %#x", r.Addr)
		}
	}
}

func TestReplyWakesWarpAndBlockCompletes(t *testing.T) {
	sm := newSM()
	src := &fakeSource{p: memProfile(), blocks: 1}
	sm.Assign(0, src)
	for now := uint64(0); now < 100_000; now++ {
		sm.Cycle(now)
		// Reflect every outbound read back as an instant reply.
		for sm.OutboxLen() > 0 {
			r := sm.PopOutbox()
			if r.Kind == memreq.Read {
				sm.DeliverReply(r, now)
			}
		}
		if now > 0 && sm.Idle() {
			break
		}
	}
	if !sm.Idle() {
		t.Fatal("memory block never retired with instant replies")
	}
	st := sm.Stats()
	if st.MemInsts == 0 || st.LoadsL1Miss == 0 {
		t.Fatalf("no memory activity recorded: %+v", st)
	}
}

func TestStallAccountingWithoutReplies(t *testing.T) {
	sm := newSM()
	src := &fakeSource{p: memProfile(), blocks: 4}
	sm.Assign(0, src)
	// Never deliver replies: warps pile up in memwait, stall units accrue.
	for now := uint64(0); now < 3000; now++ {
		sm.Cycle(now)
		for sm.OutboxLen() > 0 {
			sm.PopOutbox()
		}
	}
	st := sm.Stats()
	if st.StallUnits <= 0 {
		t.Fatal("starved SM accrued no stall units")
	}
	if a := st.Alpha(); a <= 0 || a > 1 {
		t.Fatalf("alpha %v out of (0,1]", a)
	}
}

func TestDrainReachesIdleAndReassign(t *testing.T) {
	sm := newSM()
	src := &fakeSource{p: computeProfile(), blocks: 1000}
	sm.Assign(0, src)
	for now := uint64(0); now < 100; now++ {
		sm.Cycle(now)
	}
	if sm.Idle() {
		t.Fatal("setup: SM should be busy")
	}
	sm.Drain()
	if !sm.Draining() {
		t.Fatal("Drain did not mark the SM")
	}
	var now uint64 = 100
	for ; now < 50_000 && !sm.Idle(); now++ {
		sm.Cycle(now)
	}
	if !sm.Idle() {
		t.Fatal("draining SM never became idle")
	}
	// Reassign to another app.
	src2 := &fakeSource{p: memProfile(), blocks: 1}
	sm.ResetStats()
	sm.Assign(1, src2)
	if sm.Owner() != 1 {
		t.Fatal("owner not updated")
	}
	sm.Cycle(now)
	if sm.Idle() {
		t.Fatal("reassigned SM did not pick up new blocks")
	}
	sm.Undrain()
	if sm.Draining() {
		t.Fatal("Undrain failed")
	}
}

func TestOutboxBackpressureThrottlesIssue(t *testing.T) {
	sm := newSM()
	p := memProfile()
	p.MemFrac = 1 // every instruction is a load
	src := &fakeSource{p: p, blocks: 8}
	sm.Assign(0, src)
	for now := uint64(0); now < 1000; now++ {
		sm.Cycle(now) // never drain the outbox
	}
	if sm.OutboxLen() > outboxLimit+8 {
		t.Fatalf("outbox overgrew its limit: %d", sm.OutboxLen())
	}
}

func TestWritesDoNotBlockWarps(t *testing.T) {
	sm := newSM()
	p := memProfile()
	p.WriteFrac = 1 // all stores
	src := &fakeSource{p: p, blocks: 1}
	sm.Assign(0, src)
	for now := uint64(0); now < 20_000; now++ {
		sm.Cycle(now)
		for sm.OutboxLen() > 0 {
			r := sm.PopOutbox()
			if r.Kind != memreq.Write {
				t.Fatalf("expected store, got %v", r)
			}
			// Stores are fire-and-forget: no reply delivered.
		}
		if now > 0 && sm.Idle() {
			break
		}
	}
	if !sm.Idle() {
		t.Fatal("store-only block never retired without replies")
	}
}

func TestAssignWhileBusyPanics(t *testing.T) {
	sm := newSM()
	src := &fakeSource{p: computeProfile(), blocks: 10}
	sm.Assign(0, src)
	sm.Cycle(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Assign on a busy SM must panic")
		}
	}()
	sm.Assign(1, src)
}
