package smcore

import (
	"testing"

	"dasesim/internal/kernels"
	"dasesim/internal/memreq"
)

// TestBarrierSynchronisesBlock: with __syncthreads every 10 instructions,
// warps of a block cannot drift more than one barrier period apart. We
// starve one warp's memory replies briefly to force divergence and check
// the others wait.
func TestBarrierSynchronisesBlock(t *testing.T) {
	p := computeProfile()
	p.BarrierEvery = 10
	p.InstPerWarp = 100
	sm := newSM()
	src := &fakeSource{p: p, blocks: 1}
	sm.Assign(0, src)
	for now := uint64(0); now < 20_000; now++ {
		sm.Cycle(now)
		if now > 0 && sm.Idle() {
			break
		}
	}
	if !sm.Idle() {
		t.Fatal("barrier block never retired")
	}
	st := sm.Stats()
	// 100 instructions per warp, 4 warps: barriers consume instruction
	// slots too, so the total stays 400.
	if st.Issued != 400 {
		t.Fatalf("issued %d, want 400", st.Issued)
	}
}

// TestBarrierWithMemoryOps: barriers must also release when warps arrive
// from memory waits at different times.
func TestBarrierWithMemoryOps(t *testing.T) {
	p := memProfile()
	p.BarrierEvery = 8
	p.InstPerWarp = 64
	sm := newSM()
	src := &fakeSource{p: p, blocks: 2}
	sm.Assign(0, src)
	for now := uint64(0); now < 100_000; now++ {
		sm.Cycle(now)
		for sm.OutboxLen() > 0 {
			r := sm.PopOutbox()
			if r.Kind == memreq.Read {
				sm.DeliverReply(r, now)
			}
		}
		if now > 0 && sm.Idle() {
			break
		}
	}
	if !sm.Idle() {
		t.Fatal("memory block with barriers never retired")
	}
	if src.finished != 2 {
		t.Fatalf("finished %d blocks, want 2", src.finished)
	}
}

// TestBarrierKeepsBlocksIndependent: two resident blocks must not wait on
// each other's barriers.
func TestBarrierKeepsBlocksIndependent(t *testing.T) {
	p := computeProfile()
	p.BarrierEvery = 5
	p.InstPerWarp = 50
	sm := newSM()
	src := &fakeSource{p: p, blocks: 8}
	sm.Assign(0, src)
	for now := uint64(0); now < 50_000; now++ {
		sm.Cycle(now)
		if now > 0 && sm.Idle() {
			break
		}
	}
	if !sm.Idle() {
		t.Fatal("blocks deadlocked on barriers")
	}
	if src.finished != 8 {
		t.Fatalf("finished %d blocks, want 8", src.finished)
	}
}

// TestBarrierRestoresLocality: a barrier-synchronised streaming kernel must
// keep its warps' first-lines adjacent even late in the block.
func TestBarrierRestoresLocality(t *testing.T) {
	p, _ := kernels.ByAbbr("VA")
	p.ScatterFrac = 0
	p.BarrierEvery = 50
	// Same instruction positions on all warps: barrier ops land at the
	// same indices, so memory access n still pairs up across warps.
	a := kernels.NewWarpStream(&p, 0, 1, 0, 3)
	b := kernels.NewWarpStream(&p, 0, 1, 1, 3)
	var op kernels.Op
	nthMemLine := func(ws *kernels.WarpStream, n int) uint64 {
		seen := 0
		for ws.Next(&op) {
			if op.Mem {
				seen++
				if seen == n {
					return op.Lines[0] / kernels.LineBytes
				}
			}
		}
		t.Fatal("stream exhausted")
		return 0
	}
	la := nthMemLine(a, 5)
	lb := nthMemLine(b, 5)
	if lb != la+uint64(p.CoalescedLines) {
		t.Fatalf("5th accesses not adjacent with barriers: %d vs %d", la, lb)
	}
}
