// Package smcore models one streaming multiprocessor: resident thread
// blocks, warps with a loose round-robin issue scheduler, a private L1 data
// cache with MSHR merging, memory-request injection with back-pressure, and
// the α (memory-stall-fraction) counter DASE reads (paper Eq. 15).
//
// The timing abstraction: a warp issues at most one instruction per issue
// slot; a compute instruction makes the warp dependent-stall for its
// ComputeLat; a load blocks the warp until all its lines have returned
// (from L1 after HitLatency, or from L2/DRAM via the interconnect); stores
// are fire-and-forget. When no warp can issue and at least one warp is
// waiting on memory, the cycle is a memory-stall cycle.
package smcore

import (
	"fmt"

	"dasesim/internal/cache"
	"dasesim/internal/config"
	"dasesim/internal/kernels"
	"dasesim/internal/memreq"
	"dasesim/internal/ring"
	"dasesim/internal/stats"
)

// BlockSource supplies thread blocks of one application to SMs. NextBlock
// returns the warp streams of the next block, or ok=false when no block is
// currently available (kernel fully dispatched). BlockFinished is called
// when every warp of a previously dispatched block has retired.
// WarpsPerBlock exposes the block width so an SM can check residency limits
// before consuming a block.
type BlockSource interface {
	NextBlock() (warps []*kernels.WarpStream, ok bool)
	BlockFinished()
	WarpsPerBlock() int
}

type warpState uint8

const (
	warpFree warpState = iota
	warpReady
	warpComputeWait
	warpMemWait
	warpBarrierWait
)

const wheelSize = 128 // > L1 hit latency and any ComputeLat

type wheelEntry struct {
	warp int
	kind uint8 // 0 = compute wake, 1 = line arrival
}

type warp struct {
	state       warpState
	stream      *kernels.WarpStream
	block       int // resident-block slot
	outstanding int // memory lines still in flight for the blocking load
	pendingOp   kernels.Op
	pendingIdx  int // next line of pendingOp to process; -1 = no pending op
}

// Stats is a snapshot of per-SM activity counters. All counters accumulate
// since the last ResetStats and belong to the SM's current owner app.
type Stats struct {
	Cycles       uint64
	ActiveCycles uint64 // cycles with at least one resident warp
	// StallUnits accumulates the fraction of issue slots lost per active
	// cycle while at least one warp was blocked on memory: a cycle that
	// issues nothing while warps wait on loads contributes 1, a cycle that
	// fills half its slots contributes 0.5. Alpha = StallUnits /
	// ActiveCycles is the memory-stall fraction of Eq. 15.
	StallUnits  float64
	Issued      uint64 // warp instructions issued
	MemInsts    uint64
	LoadsL1Hit  uint64
	LoadsL1Miss uint64
	BlocksDone  uint64

	// MemLat accumulates load round-trip latencies (issue to reply at the
	// SM) and LatHist buckets them for tail analysis.
	MemLat  stats.Online
	LatHist stats.LogHist
}

// Alpha returns the fraction of the SM pipeline lost to memory waiting (the
// α of Eq. 15).
func (s Stats) Alpha() float64 {
	if s.ActiveCycles == 0 {
		return 0
	}
	return s.StallUnits / float64(s.ActiveCycles)
}

// IPC returns issued warp instructions per cycle over the snapshot window.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// SM is one streaming multiprocessor.
type SM struct {
	ID  int
	cfg config.Config

	owner    memreq.AppID
	source   BlockSource
	draining bool

	// deferFinish redirects BlockFinished notifications into a counter that
	// the caller replays later with ReplayFinishes. The parallel cycle engine
	// uses it: block sources are shared across the SMs of one app, so during
	// a concurrent compute phase an SM must not call into its source.
	deferFinish     bool
	pendingFinishes int

	l1   *cache.Cache
	amap memreq.AddrMap
	pool *memreq.Pool // shared per-GPU request recycler

	warps     []warp
	freeSlots []int
	runnable  *ring.Buffer[int32] // ready warp indices, issued round-robin
	wheel     [wheelSize][]wheelEntry

	resident   int // resident thread blocks
	blockWarps []int
	// blockAtBarrier counts warps of each resident block currently waiting
	// at a block-wide barrier.
	blockAtBarrier []int
	maxResident    int

	// outbox holds requests accepted by the LSU but not yet injected into
	// the interconnect; when it backs up, memory issue throttles.
	outbox *ring.Buffer[*memreq.Request]

	// waiters[slot] lists the warps blocked on the in-flight L1 miss
	// tracked by MSHR slot (the MSHR merge lists). Slot numbers come from
	// the L1's AccessIdx/FillIdx, so no per-line map is needed.
	waiters [][]int32

	stats Stats
}

const outboxLimit = 48

// New builds an SM. All SMs of one GPU share the request pool; pass nil to
// give the SM a private one (tests).
func New(id int, cfg config.Config, amap memreq.AddrMap, pool *memreq.Pool) *SM {
	if pool == nil {
		pool = &memreq.Pool{}
	}
	maxRes := cfg.SM.MaxBlocks
	sm := &SM{
		ID:             id,
		cfg:            cfg,
		owner:          memreq.InvalidApp,
		l1:             cache.NewCache(cfg.L1, 1),
		amap:           amap,
		pool:           pool,
		warps:          make([]warp, cfg.SM.MaxWarps),
		runnable:       ring.New[int32](cfg.SM.MaxWarps),
		maxResident:    maxRes,
		blockWarps:     make([]int, maxRes),
		blockAtBarrier: make([]int, maxRes),
		outbox:         ring.New[*memreq.Request](outboxLimit),
		waiters:        make([][]int32, cfg.L1.MSHRs),
	}
	for i := range sm.waiters {
		sm.waiters[i] = make([]int32, 0, cfg.L1.MSHRMerge+1)
	}
	sm.freeSlots = make([]int, 0, cfg.SM.MaxWarps)
	for i := cfg.SM.MaxWarps - 1; i >= 0; i-- {
		sm.freeSlots = append(sm.freeSlots, i)
	}
	for i := range sm.warps {
		sm.warps[i].pendingIdx = -1
	}
	return sm
}

// Owner returns the application currently running on the SM.
func (sm *SM) Owner() memreq.AppID { return sm.owner }

// Assign gives the SM to an application. The SM must be idle (drained).
func (sm *SM) Assign(app memreq.AppID, src BlockSource) {
	if sm.resident != 0 {
		panic(fmt.Sprintf("smcore: assigning SM %d while %d blocks resident", sm.ID, sm.resident))
	}
	if sm.l1.MSHRsInUse() != 0 {
		panic(fmt.Sprintf("smcore: assigning SM %d with in-flight loads", sm.ID))
	}
	sm.owner = app
	sm.source = src
	sm.draining = false
	sm.l1.Reset() // context switch flushes the private cache
}

// Drain stops new thread-block dispatch; the SM becomes idle once resident
// blocks finish (the SM-draining reallocation of §7).
func (sm *SM) Drain() { sm.draining = true }

// Undrain resumes thread-block dispatch on a draining SM (a cancelled
// reassignment).
func (sm *SM) Undrain() { sm.draining = false }

// Draining reports whether the SM is refusing new blocks.
func (sm *SM) Draining() bool { return sm.draining }

// Idle reports whether the SM has no resident work.
func (sm *SM) Idle() bool { return sm.resident == 0 }

// ResidentBlocks returns the number of thread blocks currently resident.
func (sm *SM) ResidentBlocks() int { return sm.resident }

// Stats returns a copy of the activity counters.
func (sm *SM) Stats() Stats { return sm.stats }

// ResetStats zeroes the activity counters (start of an interval or after a
// reallocation).
func (sm *SM) ResetStats() { sm.stats = Stats{} }

// Outbox returns the pending outbound requests; the simulator drains it via
// PopOutbox as interconnect ports free up.
func (sm *SM) OutboxLen() int { return sm.outbox.Len() }

// PeekOutbox returns the head outbound request without removing it.
func (sm *SM) PeekOutbox() *memreq.Request {
	if sm.outbox.Empty() {
		return nil
	}
	return sm.outbox.Front()
}

// PopOutbox removes and returns the head outbound request.
func (sm *SM) PopOutbox() *memreq.Request {
	return sm.outbox.PopFront()
}

// maxBlocksByWarps returns how many blocks of the given width fit.
func (sm *SM) maxBlocksFor(warpsPerBlock int) int {
	byWarps := sm.cfg.SM.MaxWarps / warpsPerBlock
	if byWarps < 1 {
		byWarps = 1
	}
	if byWarps > sm.maxResident {
		byWarps = sm.maxResident
	}
	return byWarps
}

// tryDispatch fills free block slots from the source, respecting the
// residency limits (MaxBlocks and warp capacity). It reports whether the SM
// still had room for a block the source could not supply ("hungry") — the
// only case where a same-cycle BlockFinished on another SM could have made a
// difference (a kernel relaunch gated on inFlight==0).
func (sm *SM) tryDispatch() (hungry bool) {
	if sm.draining || sm.source == nil {
		return false
	}
	wpb := sm.source.WarpsPerBlock()
	for sm.resident < sm.maxBlocksFor(wpb) && len(sm.freeSlots) >= wpb {
		slot := -1
		for i := 0; i < sm.maxResident; i++ {
			if sm.blockWarps[i] == 0 {
				slot = i
				break
			}
		}
		if slot == -1 {
			return false
		}
		streams, ok := sm.source.NextBlock()
		if !ok {
			return true
		}
		if len(streams) > len(sm.freeSlots) {
			panic("smcore: block dispatched beyond warp capacity")
		}
		sm.blockWarps[slot] = len(streams)
		sm.resident++
		for _, ws := range streams {
			wi := sm.freeSlots[len(sm.freeSlots)-1]
			sm.freeSlots = sm.freeSlots[:len(sm.freeSlots)-1]
			w := &sm.warps[wi]
			w.state = warpReady
			w.stream = ws
			w.block = slot
			w.outstanding = 0
			w.pendingIdx = -1
			sm.runnable.PushBack(int32(wi))
		}
	}
	return false
}

// retireWarp releases a finished warp and possibly its block.
func (sm *SM) retireWarp(wi int) {
	w := &sm.warps[wi]
	slot := w.block
	w.state = warpFree
	w.stream = nil
	sm.freeSlots = append(sm.freeSlots, wi)
	sm.blockWarps[slot]--
	if sm.blockWarps[slot] == 0 {
		sm.resident--
		sm.stats.BlocksDone++
		if sm.deferFinish {
			sm.pendingFinishes++
		} else if sm.source != nil {
			sm.source.BlockFinished()
		}
	}
}

// Cycle advances the SM one core cycle at time now.
func (sm *SM) Cycle(now uint64) {
	sm.stats.Cycles++
	sm.tryDispatch()
	sm.wakeWheel(now)
	hasResident := sm.resident > 0
	if hasResident {
		sm.stats.ActiveCycles++
	}
	sm.issueAndAccount(now, hasResident)
}

// wakeWheel wakes warps whose timer expired at now.
func (sm *SM) wakeWheel(now uint64) {
	slotIdx := now % wheelSize
	if entries := sm.wheel[slotIdx]; len(entries) > 0 {
		for _, e := range entries {
			w := &sm.warps[e.warp]
			switch e.kind {
			case 0: // compute wake
				if w.state == warpComputeWait {
					w.state = warpReady
					sm.runnable.PushBack(int32(e.warp))
				}
			case 1: // L1-hit line arrival
				sm.lineArrived(e.warp)
			}
		}
		sm.wheel[slotIdx] = sm.wheel[slotIdx][:0]
	}
}

// issueAndAccount runs the issue loop for one cycle and attributes lost
// issue slots to memory or compute stalls.
func (sm *SM) issueAndAccount(now uint64, hasResident bool) {
	issued := 0
	blocked := false
	attempts := sm.runnable.Len()
	for issued < sm.cfg.SM.IssueWidth && attempts > 0 && !sm.runnable.Empty() {
		attempts--
		wi := int(sm.runnable.PopFront())
		switch sm.issueWarp(wi, now) {
		case issueOK:
			issued++
		case issueBlocked:
			// Structural hazard (MSHR/outbox full): requeue and stop
			// trying this cycle — the hazard will not clear mid-cycle.
			sm.runnable.PushBack(int32(wi))
			attempts = 0
			blocked = true
		case issueRetired, issueWaiting:
			// warp left the runnable queue
		}
	}

	if hasResident && issued < sm.cfg.SM.IssueWidth {
		// Attribute lost issue slots to memory in proportion to the warps
		// blocked on loads vs compute latency; memory back-pressure
		// (blocked outbox/MSHRs) is fully memory-attributable.
		lost := float64(sm.cfg.SM.IssueWidth-issued) / float64(sm.cfg.SM.IssueWidth)
		if blocked {
			sm.stats.StallUnits += lost
		} else {
			mem, comp := sm.waitCounts()
			if mem > 0 {
				sm.stats.StallUnits += lost * float64(mem) / float64(mem+comp)
			}
		}
	}
}

// The phase API below splits Cycle for the parallel cycle engine. One
// simulated cycle for SM i is the sequence
//
//	DispatchPhase(i) ; ComputePhase(i)
//
// and the sequential engine's per-cycle order D0 C0 D1 C1 ... is
// reconstructed from the phased order D0 D1 ... C0 C1 ... (all dispatches,
// then all computes concurrently) plus an ordered recovery pass: for SMs
// whose DispatchPhase went hungry, RedispatchPhase retries the dispatch once
// the deferred BlockFinished notifications of lower-index SMs have been
// replayed. See internal/sim's parallel engine for why this reconstruction
// is exact.

// SetDeferFinish switches BlockFinished deferral on or off (see deferFinish).
func (sm *SM) SetDeferFinish(on bool) { sm.deferFinish = on }

// DispatchPhase runs only the thread-block dispatch part of Cycle and
// reports whether the SM went hungry: it had room for another block but the
// source could not supply one because earlier blocks were still in flight.
func (sm *SM) DispatchPhase() (hungry bool) { return sm.tryDispatch() }

// ComputePhase runs the rest of Cycle: timer wakes, the issue loop, and
// stall accounting. With deferral enabled it touches only SM-local state, so
// ComputePhase calls on different SMs may run concurrently.
func (sm *SM) ComputePhase(now uint64) {
	sm.stats.Cycles++
	sm.wakeWheel(now)
	hasResident := sm.resident > 0
	if hasResident {
		sm.stats.ActiveCycles++
	}
	sm.issueAndAccount(now, hasResident)
}

// RedispatchPhase retries a hungry SM's dispatch after lower-index SMs'
// deferred finishes have been replayed, and runs the compute a fresh block
// would have received in the sequential engine (dispatch precedes issue
// within one SM cycle). Only a completely idle SM can profit: a non-idle
// hungry SM's own resident blocks keep its app's in-flight count above zero,
// so the kernel relaunch it is waiting for cannot trigger this cycle and the
// retry is skipped. For an idle SM the earlier ComputePhase was a no-op
// (nothing runnable, no active-cycle accounting), so dispatch + active
// accounting + issue here reproduces the sequential Cycle exactly.
func (sm *SM) RedispatchPhase(now uint64) {
	if sm.resident != 0 {
		return
	}
	sm.tryDispatch()
	if sm.resident == 0 {
		return
	}
	sm.stats.ActiveCycles++
	sm.issueAndAccount(now, true)
}

// ReplayFinishes delivers the BlockFinished notifications deferred during
// ComputePhase to the block source, in aggregate (the source's accounting is
// order-independent across blocks).
func (sm *SM) ReplayFinishes() {
	n := sm.pendingFinishes
	if n == 0 {
		return
	}
	sm.pendingFinishes = 0
	if sm.source == nil {
		return
	}
	for ; n > 0; n-- {
		sm.source.BlockFinished()
	}
}

// waitCounts returns how many warps are blocked on memory vs on compute
// dependencies.
func (sm *SM) waitCounts() (mem, comp int) {
	for i := range sm.warps {
		switch sm.warps[i].state {
		case warpMemWait:
			mem++
		case warpComputeWait:
			comp++
		}
	}
	return mem, comp
}

type issueResult uint8

const (
	issueOK issueResult = iota
	issueBlocked
	issueWaiting
	issueRetired
)

// issueWarp issues (or resumes) one instruction for warp wi.
func (sm *SM) issueWarp(wi int, now uint64) issueResult {
	w := &sm.warps[wi]
	if w.pendingIdx < 0 {
		if !w.stream.Next(&w.pendingOp) {
			sm.retireWarp(wi)
			return issueRetired
		}
		sm.stats.Issued++
		op := &w.pendingOp
		if op.Barrier {
			return sm.arriveBarrier(wi, now)
		}
		if !op.Mem {
			w.state = warpComputeWait
			lat := uint64(op.ComputeLat)
			if lat == 0 {
				lat = 1
			}
			sm.wheel[(now+lat)%wheelSize] = append(sm.wheel[(now+lat)%wheelSize], wheelEntry{wi, 0})
			return issueOK
		}
		sm.stats.MemInsts++
		w.pendingIdx = 0
	}

	op := &w.pendingOp
	for w.pendingIdx < op.NLines {
		addr := sm.amap.LineAddr(op.Lines[w.pendingIdx])
		if op.Write {
			// Write-through, no-allocate: stores bypass L1 and do not
			// block the warp, but need outbox space.
			if sm.outbox.Len() >= outboxLimit {
				return issueBlocked
			}
			r := sm.pool.Get()
			r.App, r.SM, r.Warp = sm.owner, sm.ID, wi
			r.Addr, r.Kind, r.Issued = addr, memreq.Write, now
			sm.outbox.PushBack(r)
			w.pendingIdx++
			continue
		}
		set := sm.amap.CacheSet(addr, sm.l1.Sets())
		// Peek outbox space before a potentially mutating access.
		if sm.outbox.Len() >= outboxLimit && !sm.l1.Probe(set, addr) {
			return issueBlocked
		}
		res, slot := sm.l1.AccessIdx(0, set, addr, false)
		switch res {
		case cache.Hit:
			sm.stats.LoadsL1Hit++
			w.outstanding++
			lat := sm.cfg.L1.HitLatency
			sm.wheel[(now+lat)%wheelSize] = append(sm.wheel[(now+lat)%wheelSize], wheelEntry{wi, 1})
		case cache.Miss:
			sm.stats.LoadsL1Miss++
			w.outstanding++
			sm.waiters[slot] = append(sm.waiters[slot][:0], int32(wi))
			r := sm.pool.Get()
			r.App, r.SM, r.Warp = sm.owner, sm.ID, wi
			r.Addr, r.Kind, r.Issued = addr, memreq.Read, now
			sm.outbox.PushBack(r)
		case cache.MergedMiss:
			sm.stats.LoadsL1Miss++
			w.outstanding++
			sm.waiters[slot] = append(sm.waiters[slot], int32(wi))
		case cache.Blocked:
			return issueBlocked
		}
		w.pendingIdx++
	}

	// All lines processed.
	w.pendingIdx = -1
	if w.outstanding > 0 {
		w.state = warpMemWait
		return issueOK
	}
	// Pure-store instruction: warp continues next cycle.
	w.state = warpComputeWait
	sm.wheel[(now+1)%wheelSize] = append(sm.wheel[(now+1)%wheelSize], wheelEntry{wi, 0})
	return issueOK
}

// arriveBarrier parks the warp at its block's barrier, releasing everyone
// when the last sibling arrives (__syncthreads semantics).
func (sm *SM) arriveBarrier(wi int, now uint64) issueResult {
	w := &sm.warps[wi]
	slot := w.block
	sm.blockAtBarrier[slot]++
	if sm.blockAtBarrier[slot] < sm.blockWarps[slot] {
		w.state = warpBarrierWait
		return issueOK
	}
	// Last arrival: release the whole block next cycle.
	sm.blockAtBarrier[slot] = 0
	for i := range sm.warps {
		o := &sm.warps[i]
		if o.state == warpBarrierWait && o.block == slot {
			o.state = warpComputeWait
			sm.wheel[(now+1)%wheelSize] = append(sm.wheel[(now+1)%wheelSize], wheelEntry{i, 0})
		}
	}
	w.state = warpComputeWait
	sm.wheel[(now+1)%wheelSize] = append(sm.wheel[(now+1)%wheelSize], wheelEntry{wi, 0})
	return issueOK
}

// lineArrived delivers one line of data to a waiting warp.
func (sm *SM) lineArrived(wi int) {
	w := &sm.warps[wi]
	if w.outstanding > 0 {
		w.outstanding--
	}
	if w.outstanding == 0 && w.state == warpMemWait {
		w.state = warpReady
		sm.runnable.PushBack(int32(wi))
	}
}

// DeliverReply processes a read reply arriving from the interconnect at
// cycle now: fills the L1 line, records the round-trip latency, and wakes
// every warp merged on it.
func (sm *SM) DeliverReply(r *memreq.Request, now uint64) {
	if now >= r.Issued {
		lat := now - r.Issued
		sm.stats.MemLat.Add(float64(lat))
		sm.stats.LatHist.Add(lat)
	}
	addr := r.Addr
	set := sm.amap.CacheSet(addr, sm.l1.Sets())
	_, _, _, slot := sm.l1.FillIdx(0, set, addr, false)
	if slot >= 0 {
		for _, wi := range sm.waiters[slot] {
			sm.lineArrived(int(wi))
		}
		sm.waiters[slot] = sm.waiters[slot][:0]
	}
	sm.pool.Put(r)
}

// ForEachOutbox calls fn for every request accepted by the LSU but not yet
// injected into the interconnect — the SM's contribution to the simulator's
// live-request set.
func (sm *SM) ForEachOutbox(fn func(*memreq.Request)) { sm.outbox.Do(fn) }

// CheckInvariants cross-checks the SM's scheduling bookkeeping:
//
//   - outbox and runnable rings satisfy the ring structural contract;
//   - every runnable entry is a distinct, in-range, non-free warp;
//   - the free-slot stack is duplicate-free and lists exactly the warps in
//     the free state;
//   - every non-empty L1 waiter list sits on an allocated MSHR whose merge
//     count matches the list length, every allocated MSHR has waiters, and
//     the L1's own MSHR views agree.
//
// It is O(warps + MSHRs) and mutates nothing; meant for debug runs under
// sim.WithInvariantChecks, not the per-cycle hot path.
func (sm *SM) CheckInvariants() error {
	if err := sm.outbox.CheckInvariants(func(r *memreq.Request) bool { return r == nil }); err != nil {
		return fmt.Errorf("smcore %d outbox: %w", sm.ID, err)
	}
	if err := sm.runnable.CheckInvariants(func(v int32) bool { return v == 0 }); err != nil {
		return fmt.Errorf("smcore %d runnable: %w", sm.ID, err)
	}
	var rerr error
	queued := make([]bool, len(sm.warps))
	sm.runnable.Do(func(v int32) {
		wi := int(v)
		switch {
		case wi < 0 || wi >= len(sm.warps):
			rerr = fmt.Errorf("smcore %d: runnable warp %d out of range", sm.ID, wi)
		case queued[wi]:
			rerr = fmt.Errorf("smcore %d: warp %d on the runnable queue twice", sm.ID, wi)
		case sm.warps[wi].state == warpFree:
			rerr = fmt.Errorf("smcore %d: free warp %d on the runnable queue", sm.ID, wi)
		default:
			queued[wi] = true
		}
	})
	if rerr != nil {
		return rerr
	}
	var outerr error
	sm.outbox.Do(func(r *memreq.Request) {
		if outerr != nil {
			return
		}
		switch {
		case r == nil:
			outerr = fmt.Errorf("smcore %d: nil request in outbox", sm.ID)
		case r.SM != sm.ID:
			outerr = fmt.Errorf("smcore %d: outbox request %v stamped for SM %d", sm.ID, r, r.SM)
		}
	})
	if outerr != nil {
		return outerr
	}
	free := make([]bool, len(sm.warps))
	for _, wi := range sm.freeSlots {
		if wi < 0 || wi >= len(sm.warps) {
			return fmt.Errorf("smcore %d: free slot %d out of range", sm.ID, wi)
		}
		if free[wi] {
			return fmt.Errorf("smcore %d: warp %d on the free stack twice", sm.ID, wi)
		}
		free[wi] = true
		if sm.warps[wi].state != warpFree {
			return fmt.Errorf("smcore %d: warp %d on the free stack in state %d", sm.ID, wi, sm.warps[wi].state)
		}
	}
	nFree := 0
	for i := range sm.warps {
		if sm.warps[i].state == warpFree {
			nFree++
			if !free[i] {
				return fmt.Errorf("smcore %d: free warp %d missing from the free stack", sm.ID, i)
			}
		}
	}
	if nFree != len(sm.freeSlots) {
		return fmt.Errorf("smcore %d: %d free warps but %d free slots", sm.ID, nFree, len(sm.freeSlots))
	}
	nonEmpty := 0
	for slot, ws := range sm.waiters {
		if len(ws) == 0 {
			continue
		}
		nonEmpty++
		if _, ok := sm.l1.MSHRAddr(slot); !ok {
			return fmt.Errorf("smcore %d: %d waiters on unallocated L1 MSHR slot %d", sm.ID, len(ws), slot)
		}
		if want := sm.l1.MSHRMerged(slot) + 1; want != len(ws) {
			return fmt.Errorf("smcore %d: L1 MSHR slot %d merge count says %d waiters, list holds %d", sm.ID, slot, want, len(ws))
		}
		for _, wi := range ws {
			if int(wi) < 0 || int(wi) >= len(sm.warps) {
				return fmt.Errorf("smcore %d: L1 MSHR slot %d waiter warp %d out of range", sm.ID, slot, wi)
			}
			if sm.warps[wi].state == warpFree {
				return fmt.Errorf("smcore %d: free warp %d waiting on L1 MSHR slot %d", sm.ID, wi, slot)
			}
		}
	}
	if inUse := sm.l1.MSHRsInUse(); nonEmpty != inUse {
		return fmt.Errorf("smcore %d: %d allocated L1 MSHRs but %d non-empty waiter lists", sm.ID, inUse, nonEmpty)
	}
	if err := sm.l1.CheckInvariants(); err != nil {
		return fmt.Errorf("smcore %d: %w", sm.ID, err)
	}
	return nil
}
