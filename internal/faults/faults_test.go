package faults

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestInactiveIsNoop proves unarmed injection points cost nothing and return
// nil, the production fast path.
func TestInactiveIsNoop(t *testing.T) {
	Deactivate()
	if err := Fire("sim.step"); err != nil {
		t.Fatalf("inactive Fire returned %v", err)
	}
}

// TestErrorMode checks the error path: wrapped ErrInjected, point name in
// the message, Count exhaustion, and the Fired counter.
func TestErrorMode(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "journal.append", Mode: ModeError, Count: 2})
	Activate(r)
	defer Deactivate()

	for i := 0; i < 2; i++ {
		err := Fire("journal.append")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d: err = %v, want ErrInjected", i, err)
		}
		if !strings.Contains(err.Error(), "journal.append") {
			t.Fatalf("error does not name the point: %v", err)
		}
	}
	if err := Fire("journal.append"); err != nil {
		t.Fatalf("after Count exhausted: %v", err)
	}
	if got := r.Fired("journal.append"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	// Other points stay clean.
	if err := Fire("sim.step"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

// TestCustomError checks Spec.Err overrides ErrInjected.
func TestCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	r := New(1)
	r.Arm(Spec{Point: "p", Mode: ModeError, Err: sentinel})
	Activate(r)
	defer Deactivate()
	if err := Fire("p"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

// TestPanicMode checks ModePanic panics with the point name.
func TestPanicMode(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "server.worker", Mode: ModePanic, Count: 1})
	Activate(r)
	defer Deactivate()

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(v.(string), "server.worker") {
			t.Fatalf("panic value %q does not name the point", v)
		}
	}()
	_ = Fire("server.worker")
}

// TestSleepModeCtx proves an armed sleep ends at the context deadline with
// ctx.Err() — timing out instead of hanging.
func TestSleepModeCtx(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "sim.step", Mode: ModeSleep, Delay: time.Hour})
	Activate(r)
	defer Deactivate()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := FireCtx(ctx, "sim.step")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleep ignored the deadline: %v", elapsed)
	}
}

// TestSleepModeCompletes checks a short sleep returns nil after the delay.
func TestSleepModeCompletes(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "p", Mode: ModeSleep, Delay: 5 * time.Millisecond})
	Activate(r)
	defer Deactivate()
	if err := Fire("p"); err != nil {
		t.Fatalf("completed sleep returned %v", err)
	}
}

// TestProbabilityDeterminism proves two registries with the same seed
// produce the same trigger sequence, and the trigger rate tracks P.
func TestProbabilityDeterminism(t *testing.T) {
	sequence := func(seed uint64) []bool {
		r := New(seed)
		r.Arm(Spec{Point: "p", Mode: ModeError, P: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.fire(context.Background(), "p") != nil
		}
		return out
	}
	a, b := sequence(7), sequence(7)
	triggers := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
		if a[i] {
			triggers++
		}
	}
	if triggers < 60 || triggers > 140 {
		t.Fatalf("P=0.5 triggered %d/200 times", triggers)
	}
	if c := sequence(8); equalBools(a, c) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDisarm checks Disarm removes all specs at a point.
func TestDisarm(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "p", Mode: ModeError})
	r.Disarm("p")
	Activate(r)
	defer Deactivate()
	if err := Fire("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

// TestConcurrentFire exercises the registry under concurrency (for -race).
func TestConcurrentFire(t *testing.T) {
	r := New(3)
	r.Arm(Spec{Point: "p", Mode: ModeError, P: 0.5})
	Activate(r)
	defer Deactivate()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = Fire("p")
			}
		}()
	}
	wg.Wait()
	if r.Fired("p") == 0 {
		t.Fatal("nothing fired")
	}
}
