package faults

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestInactiveIsNoop proves unarmed injection points cost nothing and return
// nil, the production fast path.
func TestInactiveIsNoop(t *testing.T) {
	Deactivate()
	if err := Fire("sim.step"); err != nil {
		t.Fatalf("inactive Fire returned %v", err)
	}
}

// TestErrorMode checks the error path: wrapped ErrInjected, point name in
// the message, Count exhaustion, and the Fired counter.
func TestErrorMode(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "journal.append", Mode: ModeError, Count: 2})
	Activate(r)
	defer Deactivate()

	for i := 0; i < 2; i++ {
		err := Fire("journal.append")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d: err = %v, want ErrInjected", i, err)
		}
		if !strings.Contains(err.Error(), "journal.append") {
			t.Fatalf("error does not name the point: %v", err)
		}
	}
	if err := Fire("journal.append"); err != nil {
		t.Fatalf("after Count exhausted: %v", err)
	}
	if got := r.Fired("journal.append"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	// Other points stay clean.
	if err := Fire("sim.step"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

// TestCustomError checks Spec.Err overrides ErrInjected.
func TestCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	r := New(1)
	r.Arm(Spec{Point: "p", Mode: ModeError, Err: sentinel})
	Activate(r)
	defer Deactivate()
	if err := Fire("p"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

// TestPanicMode checks ModePanic panics with the point name.
func TestPanicMode(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "server.worker", Mode: ModePanic, Count: 1})
	Activate(r)
	defer Deactivate()

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(v.(string), "server.worker") {
			t.Fatalf("panic value %q does not name the point", v)
		}
	}()
	_ = Fire("server.worker")
}

// TestSleepModeCtx proves an armed sleep ends at the context deadline with
// ctx.Err() — timing out instead of hanging.
func TestSleepModeCtx(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "sim.step", Mode: ModeSleep, Delay: time.Hour})
	Activate(r)
	defer Deactivate()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := FireCtx(ctx, "sim.step")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleep ignored the deadline: %v", elapsed)
	}
}

// TestSleepModeCompletes checks a short sleep returns nil after the delay.
func TestSleepModeCompletes(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "p", Mode: ModeSleep, Delay: 5 * time.Millisecond})
	Activate(r)
	defer Deactivate()
	if err := Fire("p"); err != nil {
		t.Fatalf("completed sleep returned %v", err)
	}
}

// TestProbabilityDeterminism proves two registries with the same seed
// produce the same trigger sequence, and the trigger rate tracks P.
func TestProbabilityDeterminism(t *testing.T) {
	sequence := func(seed uint64) []bool {
		r := New(seed)
		r.Arm(Spec{Point: "p", Mode: ModeError, P: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.fire(context.Background(), "p", "") != nil
		}
		return out
	}
	a, b := sequence(7), sequence(7)
	triggers := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
		if a[i] {
			triggers++
		}
	}
	if triggers < 60 || triggers > 140 {
		t.Fatalf("P=0.5 triggered %d/200 times", triggers)
	}
	if c := sequence(8); equalBools(a, c) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDisarm checks Disarm removes all specs at a point.
func TestDisarm(t *testing.T) {
	r := New(1)
	r.Arm(Spec{Point: "p", Mode: ModeError})
	r.Disarm("p")
	Activate(r)
	defer Deactivate()
	if err := Fire("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

// TestEveryRegisteredPointAndMode is the table-driven sweep the coverage
// ratchet leans on: every point name wired through the repository (Points)
// must arm and trigger in every mode. A point added to production code
// without being listed in Points — or a mode that stops triggering — fails
// here.
func TestEveryRegisteredPointAndMode(t *testing.T) {
	points := Points()
	if len(points) < 8 {
		t.Fatalf("Points() lists %d points, want at least the 8 documented ones", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		if p.Name == "" || p.Doc == "" {
			t.Fatalf("point %+v missing name or doc", p)
		}
		if seen[p.Name] {
			t.Fatalf("point %q listed twice", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{"cluster.dial", "cluster.rpc", "cluster.heartbeat", "journal.dirsync"} {
		if !seen[want] {
			t.Fatalf("network/durability point %q not registered", want)
		}
	}

	modes := []struct {
		name string
		mode Mode
		spec func(point string) Spec
		run  func(t *testing.T, point string)
	}{
		{"error", ModeError, func(p string) Spec { return Spec{Point: p, Mode: ModeError, Count: 1} },
			func(t *testing.T, p string) {
				if err := Fire(p); !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), p) {
					t.Fatalf("%s error mode: %v", p, err)
				}
			}},
		{"partition", ModePartition, func(p string) Spec { return Spec{Point: p, Mode: ModePartition, Count: 1} },
			func(t *testing.T, p string) {
				err := Fire(p)
				if !errors.Is(err, ErrPartitioned) {
					t.Fatalf("%s partition mode: %v, want ErrPartitioned", p, err)
				}
				if errors.Is(err, ErrInjected) {
					t.Fatalf("%s partition mode must be distinguishable from ErrInjected", p)
				}
			}},
		{"panic", ModePanic, func(p string) Spec { return Spec{Point: p, Mode: ModePanic, Count: 1} },
			func(t *testing.T, p string) {
				defer func() {
					v := recover()
					if v == nil {
						t.Fatalf("%s panic mode did not panic", p)
					}
					if !strings.Contains(v.(string), p) {
						t.Fatalf("%s panic value %q does not name the point", p, v)
					}
				}()
				_ = Fire(p)
			}},
		{"sleep", ModeSleep, func(p string) Spec { return Spec{Point: p, Mode: ModeSleep, Count: 1, Delay: time.Millisecond} },
			func(t *testing.T, p string) {
				if err := Fire(p); err != nil {
					t.Fatalf("%s completed sleep returned %v", p, err)
				}
			}},
	}
	for _, pt := range points {
		for _, m := range modes {
			t.Run(pt.Name+"/"+m.name, func(t *testing.T) {
				r := New(11)
				r.Arm(m.spec(pt.Name))
				Activate(r)
				defer Deactivate()
				m.run(t, pt.Name)
				if got := r.Fired(pt.Name); got != 1 {
					t.Fatalf("Fired(%s) = %d, want 1", pt.Name, got)
				}
				// Count exhausted: the next call is clean.
				if m.mode != ModePanic {
					if err := Fire(pt.Name); err != nil {
						t.Fatalf("%s after Count exhausted: %v", pt.Name, err)
					}
				}
			})
		}
	}
}

// TestLabeledSpecs proves the label semantics the cluster transport depends
// on: a labeled spec cuts exactly one direction of one pair, an unlabeled
// spec cuts the whole point, and unlabeled Fire calls never match labeled
// specs.
func TestLabeledSpecs(t *testing.T) {
	r := New(5)
	r.Arm(Spec{Point: "cluster.rpc", Label: "n1->n2", Mode: ModePartition})
	Activate(r)
	defer Deactivate()

	if err := FireLabeled("cluster.rpc", "n1->n2"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("matching label: %v, want ErrPartitioned", err)
	}
	// The reverse direction and other pairs are untouched: the partition is
	// asymmetric.
	if err := FireLabeled("cluster.rpc", "n2->n1"); err != nil {
		t.Fatalf("reverse direction fired: %v", err)
	}
	if err := FireLabeled("cluster.rpc", "n1->n3"); err != nil {
		t.Fatalf("other pair fired: %v", err)
	}
	// Unlabeled Fire does not match a labeled spec.
	if err := Fire("cluster.rpc"); err != nil {
		t.Fatalf("unlabeled call matched labeled spec: %v", err)
	}
	// An unlabeled spec matches labeled calls: a point-wide outage.
	r.Arm(Spec{Point: "cluster.dial", Mode: ModeError})
	if err := FireLabeled("cluster.dial", "n3->n1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("point-wide spec missed a labeled call: %v", err)
	}
}

// TestInjectionScheduleDeterminism proves the property the seeded cluster
// fault suite rests on: with probabilistic specs over several points and
// labels, the same seed and the same call sequence yield the same injection
// schedule.
func TestInjectionScheduleDeterminism(t *testing.T) {
	calls := []struct{ point, label string }{
		{"cluster.rpc", "n1->n2"}, {"cluster.heartbeat", "n2->n3"},
		{"cluster.rpc", "n2->n1"}, {"cluster.dial", "n3->n1"},
	}
	schedule := func(seed uint64) []bool {
		r := New(seed)
		r.Arm(Spec{Point: "cluster.rpc", Mode: ModeError, P: 0.3})
		r.Arm(Spec{Point: "cluster.heartbeat", Label: "n2->n3", Mode: ModePartition, P: 0.3})
		r.Arm(Spec{Point: "cluster.dial", Mode: ModeError, P: 0.3})
		var out []bool
		for i := 0; i < 100; i++ {
			c := calls[i%len(calls)]
			out = append(out, r.fire(context.Background(), c.point, c.label) != nil)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	if !equalBools(a, b) {
		t.Fatal("same seed produced different injection schedules")
	}
	if c := schedule(43); equalBools(a, c) {
		t.Fatal("different seeds produced identical injection schedules")
	}
}

// TestConcurrentFire exercises the registry under concurrency (for -race).
func TestConcurrentFire(t *testing.T) {
	r := New(3)
	r.Arm(Spec{Point: "p", Mode: ModeError, P: 0.5})
	Activate(r)
	defer Deactivate()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = Fire("p")
			}
		}()
	}
	wg.Wait()
	if r.Fired("p") == 0 {
		t.Fatal("nothing fired")
	}
}
