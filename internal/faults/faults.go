// Package faults is a deterministic, stdlib-only fault-injection registry.
// Production code declares named injection points (Fire / FireCtx calls) at
// the places where the system talks to something that can fail — the
// simulation step loop, the result cache, the job journal, the worker loop —
// and tests arm those points to return errors, panic, or sleep past
// deadlines with a configurable probability drawn from a seeded PRNG.
//
// When nothing is armed the injection points are a single atomic pointer
// load, so they are free to leave in production builds.
//
// Usage in a test:
//
//	reg := faults.New(42)
//	reg.Arm(faults.Spec{Point: "server.worker", Mode: faults.ModeError, Count: 1})
//	faults.Activate(reg)
//	defer faults.Deactivate()
//
// The named points wired through this repository are listed by Points; the
// network-level points (cluster.dial, cluster.rpc, cluster.heartbeat) fire
// with a "src->dst" label so tests can arm asymmetric partitions: a Spec with
// a Label only triggers for that one direction, a Spec without one triggers
// for every call at the point.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by an armed ModeError point.
// Callers that retry on transient failures treat it as retryable.
var ErrInjected = errors.New("injected fault")

// ErrPartitioned is the default error returned by an armed ModePartition
// point: the network analogue of ErrInjected. The cluster layer treats it
// like an unreachable peer and routes around it.
var ErrPartitioned = errors.New("injected network partition")

// Point describes one injection point wired through the repository.
type Point struct {
	Name string
	Doc  string
}

// Points returns every injection-point name wired through this repository,
// in stable order. The faults test suite iterates this list so a new point
// cannot ship without error/panic/sleep coverage.
func Points() []Point {
	return []Point{
		{"sim.step", "the simulation chunk loop in (*sim.GPU).RunContext"},
		{"simcache.get", "(*simcache.Memory).GetOrCompute, before lookup"},
		{"journal.append", "(*journal.Journal).Append, before the write"},
		{"journal.dirsync", "the parent-directory fsync after journal compaction renames"},
		{"server.worker", "the job runner, after the queued→running transition"},
		{"cluster.dial", "peer connection establishment, labeled src->dst"},
		{"cluster.rpc", "every non-heartbeat peer RPC, labeled src->dst"},
		{"cluster.heartbeat", "membership heartbeats, labeled src->dst"},
	}
}

// Mode is what an armed injection point does when it triggers.
type Mode int

const (
	// ModeError makes Fire return Spec.Err (ErrInjected by default).
	ModeError Mode = iota
	// ModePanic makes Fire panic, exercising recover paths.
	ModePanic
	// ModeSleep makes Fire sleep for Spec.Delay (or until ctx expires,
	// returning ctx.Err()), exercising deadline-overrun paths.
	ModeSleep
	// ModePartition makes Fire return Spec.Err (ErrPartitioned by default) —
	// semantically a dropped network link rather than a failed operation.
	// Combined with Spec.Label it cuts one direction of one peer pair,
	// which is how tests build asymmetric partitions.
	ModePartition
)

// Spec arms one injection point.
type Spec struct {
	// Point is the injection-point name, e.g. "journal.append".
	Point string
	// Label restricts the spec to FireLabeled calls with an equal label
	// (the cluster transport labels calls "src->dst"). Empty matches every
	// call at the point, labeled or not.
	Label string
	// Mode selects the failure behaviour.
	Mode Mode
	// P is the trigger probability per Fire call; values outside (0,1)
	// mean "always trigger".
	P float64
	// Count caps how many times this spec triggers; 0 means unlimited.
	Count int
	// Err overrides ErrInjected for ModeError.
	Err error
	// Delay is the ModeSleep duration.
	Delay time.Duration
}

// armed is one spec plus its trigger bookkeeping.
type armed struct {
	spec Spec
	hits int
}

// Registry holds armed injection points. All methods are safe for concurrent
// use; the trigger sequence is a deterministic function of the seed and the
// order of Fire calls.
type Registry struct {
	mu    sync.Mutex
	rng   *rand.Rand
	specs map[string][]*armed
	fired map[string]uint64
}

// New builds an empty registry whose probabilistic triggers draw from a PRNG
// seeded with seed.
func New(seed uint64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		specs: map[string][]*armed{},
		fired: map[string]uint64{},
	}
}

// Arm registers a spec; several specs may share a point and are evaluated in
// arming order on each Fire.
func (r *Registry) Arm(s Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.specs[s.Point] = append(r.specs[s.Point], &armed{spec: s})
}

// Disarm removes every spec armed at point.
func (r *Registry) Disarm(point string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.specs, point)
}

// Fired reports how many times point has triggered (any mode).
func (r *Registry) Fired(point string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[point]
}

// action is a decision taken under the lock and executed outside it.
type action struct {
	mode  Mode
	err   error
	delay time.Duration
	point string
}

// fire evaluates the specs armed at point and performs at most one action.
// label is empty for unlabeled Fire calls; a spec with a label only matches
// calls carrying the same label.
func (r *Registry) fire(ctx context.Context, point, label string) error {
	r.mu.Lock()
	var act *action
	for _, a := range r.specs[point] {
		if a.spec.Label != "" && a.spec.Label != label {
			continue
		}
		if a.spec.Count > 0 && a.hits >= a.spec.Count {
			continue
		}
		if p := a.spec.P; p > 0 && p < 1 && r.rng.Float64() >= p {
			continue
		}
		a.hits++
		r.fired[point]++
		act = &action{mode: a.spec.Mode, err: a.spec.Err, delay: a.spec.Delay, point: point}
		break
	}
	r.mu.Unlock()
	if act == nil {
		return nil
	}
	switch act.mode {
	case ModePanic:
		panic(fmt.Sprintf("faults: injected panic at %s", act.point))
	case ModeSleep:
		t := time.NewTimer(act.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case ModePartition:
		err := act.err
		if err == nil {
			err = ErrPartitioned
		}
		return fmt.Errorf("faults: %s: %w", act.point, err)
	default:
		err := act.err
		if err == nil {
			err = ErrInjected
		}
		return fmt.Errorf("faults: %s: %w", act.point, err)
	}
}

// active is the process-wide registry consulted by Fire; nil means every
// injection point is a no-op.
var active atomic.Pointer[Registry]

// Activate installs r as the process-wide registry.
func Activate(r *Registry) { active.Store(r) }

// Deactivate removes the process-wide registry, disabling all points.
func Deactivate() { active.Store(nil) }

// Fire triggers the injection point with no deadline (ModeSleep sleeps its
// full delay). It returns nil when nothing is armed.
func Fire(point string) error { return FireCtx(context.Background(), point) }

// FireCtx triggers the injection point; a ModeSleep trigger returns ctx.Err()
// early when ctx expires mid-sleep. It returns nil when nothing is armed.
func FireCtx(ctx context.Context, point string) error {
	return FireLabeledCtx(ctx, point, "")
}

// FireLabeled triggers the injection point with a call-site label (the
// cluster transport uses "src->dst"), matching both labeled specs with an
// equal label and unlabeled point-wide specs.
func FireLabeled(point, label string) error {
	return FireLabeledCtx(context.Background(), point, label)
}

// FireLabeledCtx is FireLabeled with a context bounding ModeSleep triggers.
func FireLabeledCtx(ctx context.Context, point, label string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.fire(ctx, point, label)
}
