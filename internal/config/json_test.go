package config

import (
	"path/filepath"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	c := Default()
	c.NumSMs = 20
	c.Mem.AppAwareRR = true
	data, err := c.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip changed config:\n%+v\n%+v", c, got)
	}
}

func TestFromJSONValidates(t *testing.T) {
	c := Default()
	c.NumSMs = 0
	data, _ := c.ToJSON()
	if _, err := FromJSON(data); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := FromJSON([]byte("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpu.json")
	c := Large()
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("file round trip changed config")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
