package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTableII(t *testing.T) {
	c := Default()
	if c.NumSMs != 16 {
		t.Errorf("NumSMs = %d, Table II says 16", c.NumSMs)
	}
	if c.NumMCs != 6 {
		t.Errorf("NumMCs = %d, Table II says 6", c.NumMCs)
	}
	if c.SM.MaxWarps != 48 || c.SM.MaxWarps*c.SM.WarpSize != 1536 {
		t.Errorf("warp capacity %d/%d threads, Table II says 48/1536", c.SM.MaxWarps, c.SM.MaxWarps*c.SM.WarpSize)
	}
	if c.L1.SizeBytes != 16*1024 || c.L1.Assoc != 4 {
		t.Errorf("L1 %dB %d-way, Table II says 16KB 4-way", c.L1.SizeBytes, c.L1.Assoc)
	}
	if got := c.NumMCs * c.L2.SizeBytes; got != 768*1024 {
		t.Errorf("total L2 = %d, Table II says 768KB", got)
	}
	if c.L2.LineBytes != 128 {
		t.Errorf("line size %d, Table II says 128B", c.L2.LineBytes)
	}
	if c.Mem.NumBanks != 16 {
		t.Errorf("banks/MC = %d, Table II says 16", c.Mem.NumBanks)
	}
	// tRP = tRCD = 12 DRAM cycles at 924 MHz = 18 core cycles at 1400 MHz.
	if c.Mem.TRP != 18 || c.Mem.TRCD != 18 {
		t.Errorf("tRP/tRCD = %d/%d core cycles, want 18/18", c.Mem.TRP, c.Mem.TRCD)
	}
	if c.IntervalCycles != 50_000 {
		t.Errorf("interval = %d, paper uses 50K cycles", c.IntervalCycles)
	}
	if c.ATDSampledSets != 8 {
		t.Errorf("sampled ATD sets = %d, paper uses 8", c.ATDSampledSets)
	}
	if c.RequestMaxFactor != 0.6 {
		t.Errorf("RequestMaxFactor = %v, Eq. 20 uses 0.6", c.RequestMaxFactor)
	}
}

func TestLargeValidates(t *testing.T) {
	c := Large()
	if err := c.Validate(); err != nil {
		t.Fatalf("Large config invalid: %v", err)
	}
	if c.NumSMs != 24 || c.NumMCs != 8 {
		t.Fatalf("Large = %d SMs / %d MCs", c.NumSMs, c.NumMCs)
	}
	if got := c.NumMCs * c.L2.SizeBytes; got != 1024*1024 {
		t.Fatalf("Large total L2 = %d, want 1MB", got)
	}
}

func TestPeakBandwidthMatchesGTX480(t *testing.T) {
	c := Default()
	// 1 line per TBurst per MC: bytes/cycle * 1.4 GHz should be ~177 GB/s.
	bytesPerCycle := c.PeakRequestsPerCycle() * float64(c.L2.LineBytes)
	gbps := bytesPerCycle * 1.4e9 / 1e9
	if gbps < 160 || gbps > 200 {
		t.Fatalf("peak bandwidth %.1f GB/s, GTX 480 is ~177", gbps)
	}
}

func TestRequestMax(t *testing.T) {
	c := Default()
	got := c.RequestMax(50_000)
	want := 1.0 * 50_000 * 0.6 // 1 line/cycle aggregate * derate
	if got != want {
		t.Fatalf("RequestMax = %v, want %v", got, want)
	}
}

func TestPeakActivationsPerCycle(t *testing.T) {
	c := Default()
	want := 6.0 * 4 / float64(c.Mem.TFAW)
	if got := c.PeakActivationsPerCycle(); got != want {
		t.Fatalf("PeakActivationsPerCycle = %v, want %v", got, want)
	}
	c.Mem.TFAW = 0
	if got := c.PeakActivationsPerCycle(); got != c.PeakRequestsPerCycle() {
		t.Fatalf("disabled tFAW should fall back to bus peak, got %v", got)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"sms", func(c *Config) { c.NumSMs = 0 }, "NumSMs"},
		{"mcs", func(c *Config) { c.NumMCs = 0 }, "NumMCs"},
		{"warps", func(c *Config) { c.SM.MaxWarps = 0 }, "warp"},
		{"blocks", func(c *Config) { c.SM.MaxBlocks = 0 }, "MaxBlocks"},
		{"interval", func(c *Config) { c.IntervalCycles = 0 }, "Interval"},
		{"atd", func(c *Config) { c.ATDSampledSets = 0 }, "ATD"},
		{"atd-too-big", func(c *Config) { c.ATDSampledSets = 1 << 20 }, "exceeds"},
		{"reqmax", func(c *Config) { c.RequestMaxFactor = 0 }, "RequestMaxFactor"},
		{"banks", func(c *Config) { c.Mem.NumBanks = 0 }, "bank"},
		{"burst", func(c *Config) { c.Mem.TBurst = 0 }, "TBurst"},
		{"queues", func(c *Config) { c.Mem.QueueDepth = 0 }, "queue"},
		{"flits", func(c *Config) { c.ICNT.FlitBytes = 0 }, "packet"},
		{"icntq", func(c *Config) { c.ICNT.InQueueDepth = 0 }, "queue"},
		{"l1line", func(c *Config) { c.L1.LineBytes = 100 }, "L1"},
		{"l1mshr", func(c *Config) { c.L1.MSHRs = 0 }, "L1"},
		{"linemismatch", func(c *Config) { c.L1.LineBytes = 64; c.L1.SizeBytes = 16 * 1024 }, "line sizes"},
	}
	for _, tc := range cases {
		c := Default()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: bad config accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCacheSets(t *testing.T) {
	cc := CacheConfig{SizeBytes: 16 * 1024, Assoc: 4, LineBytes: 128}
	if got := cc.Sets(); got != 32 {
		t.Fatalf("Sets = %d, want 32", got)
	}
}
