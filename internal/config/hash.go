package config

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Fingerprint returns a stable content hash of the configuration for use in
// cache keys: equal configurations produce equal fingerprints, and any
// exported-field change produces a different one. The hash is computed over
// the canonical JSON encoding (encoding/json emits struct fields in
// declaration order), so it is stable across processes and runs.
func (c Config) Fingerprint() string {
	data, err := json.Marshal(c)
	if err != nil {
		// Config holds only plain scalar fields; Marshal cannot fail.
		panic(fmt.Sprintf("config: fingerprint: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}
