package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// ToJSON serialises the configuration (indented, stable field names — the
// struct's exported fields are the schema).
func (c Config) ToJSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// FromJSON parses a configuration produced by ToJSON (or hand-written).
// Missing fields inherit the zero value, so callers typically start from
// Default, serialise, edit, and reload; Validate is applied before
// returning.
func FromJSON(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// LoadFile reads a JSON configuration from disk.
func LoadFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	return FromJSON(data)
}

// SaveFile writes the configuration as JSON.
func (c Config) SaveFile(path string) error {
	data, err := c.ToJSON()
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}
