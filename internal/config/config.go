// Package config holds the simulated GPU configuration.
//
// The default configuration reproduces Table II of the paper: a GTX 480-like
// device with 16 SMs at 1400 MHz, a crossbar interconnect, and 6 memory
// partitions, each with an L2 slice and an FR-FCFS memory controller over 16
// DRAM banks (924 MHz, tRP = tRCD = 12 DRAM cycles).
//
// The simulator runs in a single clock domain (the SM core clock). DRAM timing
// parameters are expressed in core cycles, scaled by the 1400/924 clock ratio,
// so one 128-byte burst occupies the data bus for 6 core cycles; with 6 memory
// controllers the peak bandwidth is 128 B * 6 / 6 cycles = 128 B/cycle, which
// at 1.4 GHz is ~179 GB/s, matching the GTX 480's 177 GB/s.
package config

import (
	"errors"
	"fmt"
)

// Config describes the whole simulated GPU. The zero value is not usable;
// start from Default and override fields as needed.
type Config struct {
	SM     SMConfig
	L1     CacheConfig
	L2     CacheConfig // per-partition slice
	ICNT   ICNTConfig
	Mem    MemConfig
	NumSMs int // number of streaming multiprocessors
	NumMCs int // number of memory partitions / controllers

	// IntervalCycles is the estimation interval (paper: 50K cycles).
	IntervalCycles uint64

	// ATDSampledSets is the number of L2 sets tracked by each application's
	// auxiliary tag directory (paper: 8 sampled sets).
	ATDSampledSets int

	// RequestMaxFactor is the empirical derating of peak request throughput
	// used by the MBB classifier (paper Eq. 20: 0.6).
	RequestMaxFactor float64
}

// SMConfig describes one streaming multiprocessor.
type SMConfig struct {
	MaxWarps       int // resident warp limit (paper: 48 warps = 1536 threads)
	MaxBlocks      int // resident thread-block limit (Fermi: 8)
	WarpSize       int // threads per warp
	IssueWidth     int // warp instructions issued per cycle
	SharedMemBytes int // shared memory per SM (48 KB)
	Registers      int // register file size (32684 in the paper's table)
}

// CacheConfig describes a set-associative cache (L1 per SM or an L2 slice per
// memory partition).
type CacheConfig struct {
	SizeBytes  int
	Assoc      int
	LineBytes  int
	HitLatency uint64 // core cycles from access to data for a hit
	MSHRs      int    // distinct outstanding miss lines
	MSHRMerge  int    // max merged requests per MSHR entry

	// Writeback makes the cache track dirty lines and emit a write-back
	// transaction when a dirty line is evicted (otherwise stores that hit
	// are absorbed and evictions are silent). Off by default: the paper's
	// Table II does not specify the L2 write policy.
	Writeback bool
}

// Sets returns the number of cache sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Assoc * c.LineBytes) }

// ICNTConfig describes the SM<->memory-partition crossbar.
type ICNTConfig struct {
	Latency       uint64 // fixed traversal latency in core cycles
	FlitBytes     int    // bytes moved per port per cycle
	RequestBytes  int    // size of an address/command packet
	InQueueDepth  int    // per-port request queue depth
	OutQueueDepth int    // per-port reply queue depth
}

// MemConfig describes one memory controller and its DRAM banks, with all
// timings in core cycles (Table II's DRAM-cycle values scaled by 1400/924).
type MemConfig struct {
	NumBanks     int
	RowBytes     int    // row-buffer size per bank
	TRCD         uint64 // ACT -> CAS (paper: 12 DRAM cycles -> 18 core cycles)
	TRP          uint64 // PRE -> ACT
	TCAS         uint64 // CAS -> first data
	TBurst       uint64 // data-bus cycles per cache-line transfer
	TRRD         uint64 // min gap between two ACTs on one controller
	TFAW         uint64 // window in which at most 4 ACTs may issue
	QueueDepth   int    // request buffer entries per controller
	L2QueueDepth int    // partition-input queue depth

	// TREFI/TRFC enable periodic all-bank refresh when both are nonzero:
	// every TREFI cycles the controller stalls all banks for TRFC cycles
	// and closes every row. The paper's Table II lists no refresh timing,
	// so the default leaves refresh off; see BenchmarkAblationRefresh.
	TREFI uint64
	TRFC  uint64

	// AppAwareRR switches the memory scheduler from plain FR-FCFS to the
	// application-aware round-robin of Jog et al. (GPGPU 2014, the paper's
	// related work): the controller rotates across applications with
	// pending requests, applying FR-FCFS within the chosen application, to
	// avoid starvation induced by high-row-locality co-runners.
	AppAwareRR bool
}

// Default returns the Table II baseline configuration.
func Default() Config {
	return Config{
		NumSMs: 16,
		NumMCs: 6,
		SM: SMConfig{
			MaxWarps:       48,
			MaxBlocks:      8,
			WarpSize:       32,
			IssueWidth:     2,
			SharedMemBytes: 48 * 1024,
			Registers:      32684,
		},
		L1: CacheConfig{
			SizeBytes:  16 * 1024,
			Assoc:      4,
			LineBytes:  128,
			HitLatency: 30,
			MSHRs:      32,
			MSHRMerge:  8,
		},
		L2: CacheConfig{
			SizeBytes:  128 * 1024, // 768 KB total / 6 partitions
			Assoc:      8,
			LineBytes:  128,
			HitLatency: 30,
			MSHRs:      192,
			MSHRMerge:  8,
		},
		ICNT: ICNTConfig{
			Latency:       8,
			FlitBytes:     32,
			RequestBytes:  8,
			InQueueDepth:  64,
			OutQueueDepth: 32,
		},
		Mem: MemConfig{
			NumBanks:     16,
			RowBytes:     2048,
			TRCD:         18, // 12 DRAM cycles * 1400/924
			TRP:          18,
			TCAS:         18,
			TBurst:       6,  // 128 B line over the DRAM bus, in core cycles
			TRRD:         15, // activate-to-activate gap
			TFAW:         60, // four-activate window (power constraint)
			QueueDepth:   256,
			L2QueueDepth: 32,
		},
		IntervalCycles:   50_000,
		ATDSampledSets:   8,
		RequestMaxFactor: 0.6,
	}
}

// Large returns a bigger device (24 SMs, 8 memory partitions, 1 MB L2) in
// the spirit of the Kepler-class parts the paper cites, for robustness
// studies of the estimation model across GPU generations (experiment Ext.E).
func Large() Config {
	c := Default()
	c.NumSMs = 24
	c.NumMCs = 8
	c.L2.SizeBytes = 128 * 1024 // 8 slices -> 1 MB total
	return c
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return errors.New("config: NumSMs must be positive")
	case c.NumMCs <= 0:
		return errors.New("config: NumMCs must be positive")
	case c.SM.MaxWarps <= 0 || c.SM.WarpSize <= 0 || c.SM.IssueWidth <= 0:
		return errors.New("config: SM warp parameters must be positive")
	case c.SM.MaxBlocks <= 0:
		return errors.New("config: SM.MaxBlocks must be positive")
	case c.IntervalCycles == 0:
		return errors.New("config: IntervalCycles must be positive")
	case c.ATDSampledSets <= 0:
		return errors.New("config: ATDSampledSets must be positive")
	case c.RequestMaxFactor <= 0 || c.RequestMaxFactor > 1:
		return fmt.Errorf("config: RequestMaxFactor %v out of (0,1]", c.RequestMaxFactor)
	case c.Mem.NumBanks <= 0 || c.Mem.RowBytes <= 0:
		return errors.New("config: DRAM bank parameters must be positive")
	case c.Mem.TBurst == 0:
		return errors.New("config: Mem.TBurst must be positive")
	case c.Mem.QueueDepth <= 0 || c.Mem.L2QueueDepth <= 0:
		return errors.New("config: memory queue depths must be positive")
	case (c.Mem.TREFI == 0) != (c.Mem.TRFC == 0):
		return errors.New("config: TREFI and TRFC must be set together")
	case c.Mem.TREFI > 0 && c.Mem.TRFC >= c.Mem.TREFI:
		return errors.New("config: TRFC must be shorter than TREFI")
	case c.ICNT.FlitBytes <= 0 || c.ICNT.RequestBytes <= 0:
		return errors.New("config: ICNT packet sizes must be positive")
	case c.ICNT.InQueueDepth <= 0 || c.ICNT.OutQueueDepth <= 0:
		return errors.New("config: ICNT queue depths must be positive")
	}
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1", c.L1}, {"L2", c.L2}} {
		if err := cc.c.validate(); err != nil {
			return fmt.Errorf("config: %s: %w", cc.name, err)
		}
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return errors.New("config: L1 and L2 line sizes must match")
	}
	if c.ATDSampledSets > c.L2.Sets() {
		return fmt.Errorf("config: ATDSampledSets %d exceeds L2 sets %d", c.ATDSampledSets, c.L2.Sets())
	}
	return nil
}

func (c CacheConfig) validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0:
		return errors.New("size, associativity and line size must be positive")
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("line size %d must be a power of two", c.LineBytes)
	case c.SizeBytes%(c.Assoc*c.LineBytes) != 0:
		return fmt.Errorf("size %d not divisible by assoc*line %d", c.SizeBytes, c.Assoc*c.LineBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("set count %d must be a power of two", c.Sets())
	case c.MSHRs <= 0 || c.MSHRMerge <= 0:
		return errors.New("MSHR parameters must be positive")
	}
	return nil
}

// PeakRequestsPerCycle returns the aggregate peak rate at which the DRAM
// subsystem can deliver cache lines, in requests per core cycle (one line per
// TBurst cycles per controller).
func (c Config) PeakRequestsPerCycle() float64 {
	return float64(c.NumMCs) / float64(c.Mem.TBurst)
}

// PeakActivationsPerCycle returns the aggregate peak row-activation rate
// permitted by the tFAW power window (four ACTs per window per controller).
func (c Config) PeakActivationsPerCycle() float64 {
	if c.Mem.TFAW == 0 {
		return c.PeakRequestsPerCycle()
	}
	return float64(c.NumMCs) * 4 / float64(c.Mem.TFAW)
}

// RequestMax returns the derated maximum number of requests the DRAM can
// serve in the given number of cycles (paper Eq. 20).
func (c Config) RequestMax(cycles uint64) float64 {
	return c.PeakRequestsPerCycle() * float64(cycles) * c.RequestMaxFactor
}
