// Package dram models one GDDR memory controller per memory partition: a
// request buffer, an FR-FCFS scheduler, NumBanks DRAM banks with row buffers
// and tRCD/tRP/CAS timing, and a shared data bus that moves one cache line
// per TBurst core cycles.
//
// Besides timing, the controller maintains the per-application hardware
// counters the paper's estimators read (Table I): served-request counters,
// total bank-occupancy time (TimeRequest), bank-level-parallelism samples
// (BLP and BLPAccess), last-access-row registers for extra-row-buffer-miss
// detection (ERBMiss), and the DRAM bandwidth decomposition of Figure 2(b)
// (per-app data cycles, wasted timing-constraint cycles, idle cycles).
package dram

import (
	"fmt"
	"math/bits"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

// blpSamplePeriod is how often (in core cycles) the controller samples
// bank-level parallelism. Real hardware samples continuously; sampling every
// few cycles is statistically identical and much cheaper to simulate.
const blpSamplePeriod = 8

// AppCounters are the per-application DASE hardware counters of one memory
// controller, cumulative since the last ResetCounters.
type AppCounters struct {
	// Served counts requests whose data transfer completed (Request_i).
	Served uint64
	// TimeInBanks sums, over served requests, the cycles from bank
	// scheduling to data completion (the TimeRequest counter of Eq. 12).
	TimeInBanks uint64
	// ERBMiss counts extra row-buffer misses: row misses to a row equal to
	// the app's last accessed row in that bank (Eq. 10).
	ERBMiss uint64
	// RowHits / RowMisses classify served requests by row-buffer outcome.
	RowHits   uint64
	RowMisses uint64
	// BLPSum accumulates, at each sample with outstanding work, the number
	// of banks executing or targeted by the app's queued requests (BLP_i).
	BLPSum uint64
	// BLPAccessSum accumulates banks currently executing the app's requests
	// (BLPAccess_i).
	BLPAccessSum uint64
	// BLPBlockedSum accumulates banks the app is queued on while another
	// app's request occupies them — direct bank-interference evidence,
	// zero when the app runs alone.
	BLPBlockedSum uint64
	// BLPSamples counts samples taken while the app had outstanding work.
	BLPSamples uint64
	// DataBusCycles is the data-bus time spent transferring the app's lines.
	DataBusCycles uint64
	// Enqueued counts requests accepted into the request buffer.
	Enqueued uint64
}

// BLP returns the average bank-level parallelism of the application: banks
// executing or about to be occupied by its queued requests, averaged over
// cycles with at least one outstanding request (paper §4.2).
func (c AppCounters) BLP() float64 {
	if c.BLPSamples == 0 {
		return 0
	}
	return float64(c.BLPSum) / float64(c.BLPSamples)
}

// BLPAccess returns the average number of banks executing the application's
// requests over the same samples.
func (c AppCounters) BLPAccess() float64 {
	if c.BLPSamples == 0 {
		return 0
	}
	return float64(c.BLPAccessSum) / float64(c.BLPSamples)
}

// BLPBlocked returns the average number of banks on which the application
// waits behind another application's request.
func (c AppCounters) BLPBlocked() float64 {
	if c.BLPSamples == 0 {
		return 0
	}
	return float64(c.BLPBlockedSum) / float64(c.BLPSamples)
}

// BusCounters decompose the controller's data-bus bandwidth, as in Fig. 2(b).
type BusCounters struct {
	// Cycles is the total cycles observed.
	Cycles uint64
	// Idle counts cycles with no request anywhere in the controller.
	Idle uint64
	// Data cycles are accounted per app in AppCounters.DataBusCycles; the
	// remainder (Cycles - Idle - ΣData) is Wasted-BW: bus time lost to
	// DRAM timing constraints (ACT/PRE/CAS gaps) while work was pending.
}

// Wasted derives the timing-constraint waste given the summed per-app data
// cycles of the same window.
func (b BusCounters) Wasted(totalData uint64) uint64 {
	if b.Idle+totalData >= b.Cycles {
		return 0
	}
	return b.Cycles - b.Idle - totalData
}

type bank struct {
	openRow   uint64
	rowOpen   bool
	readyAt   uint64 // earliest cycle the next command may start
	busyUntil uint64 // current request completes (data fully transferred)
	cur       *memreq.Request
	curRowHit bool
}

// Controller is one memory partition's DRAM controller.
type Controller struct {
	cfg     config.MemConfig
	amap    memreq.AddrMap
	id      int
	numApps int

	banks  []bank
	queues [][]*memreq.Request // per-bank request queues
	queued int                 // total buffered requests
	seq    uint64              // enqueue sequence for FCFS ordering

	// queuedPerBank[app*NumBanks+bank] counts the app's buffered requests
	// per bank, maintained incrementally so BLP sampling never rescans the
	// queues.
	queuedPerBank []int32

	// lastRow[app*NumBanks+bank] is the app's last accessed row in bank
	// (the last-access-row registers of Table I).
	lastRow      []uint64
	lastRowValid []bool

	busBusyUntil uint64

	// Activation throttling (tRRD/tFAW): lastActs holds the most recent
	// four ACT issue times, lastActs[0] being the oldest; actCount says how
	// many entries are real.
	lastActs [4]uint64
	actCount int

	outstanding []int // per-app requests in queue or in banks

	prio memreq.AppID // app whose requests are scheduled first (MISE/ASM)

	// Application-aware round-robin scheduling state (AppAwareRR).
	rrNext memreq.AppID

	// Refresh state: the next refresh deadline (0 disables).
	nextRefresh uint64
	// Refreshes counts completed refresh operations.
	Refreshes uint64

	apps []AppCounters
	bus  BusCounters

	replies []*memreq.Request
}

// NewController builds a controller for partition id serving numApps apps.
func NewController(cfg config.MemConfig, amap memreq.AddrMap, id, numApps int) *Controller {
	return &Controller{
		cfg:           cfg,
		amap:          amap,
		id:            id,
		numApps:       numApps,
		banks:         make([]bank, cfg.NumBanks),
		queues:        make([][]*memreq.Request, cfg.NumBanks),
		queuedPerBank: make([]int32, numApps*cfg.NumBanks),
		lastRow:       make([]uint64, numApps*cfg.NumBanks),
		lastRowValid:  make([]bool, numApps*cfg.NumBanks),
		outstanding:   make([]int, numApps),
		prio:          memreq.InvalidApp,
		apps:          make([]AppCounters, numApps),
		nextRefresh:   cfg.TREFI,
	}
}

// CanAccept reports whether the request buffer has room.
func (c *Controller) CanAccept() bool { return c.queued < c.cfg.QueueDepth }

// Enqueue adds a request to its bank's queue. The caller must have checked
// CanAccept. The request's BankEnter field temporarily stores its arrival
// sequence number for FCFS ordering until it is scheduled into the bank.
func (c *Controller) Enqueue(r *memreq.Request) {
	b := c.amap.Bank(r.Addr)
	c.seq++
	r.BankEnter = c.seq
	// Cache the row address once: the FR-FCFS scheduler compares it against
	// open rows for every queued candidate every cycle, and AddrMap.Row's
	// divisions dominated the controller's profile when recomputed there.
	r.Row = c.amap.Row(r.Addr)
	c.queues[b] = append(c.queues[b], r)
	c.queued++
	c.queuedPerBank[int(r.App)*c.cfg.NumBanks+b]++
	c.outstanding[r.App]++
	c.apps[r.App].Enqueued++
}

// QueueLen returns the number of buffered (not yet bank-scheduled) requests.
func (c *Controller) QueueLen() int { return c.queued }

// Outstanding returns the app's requests currently queued or in service.
func (c *Controller) Outstanding(app memreq.AppID) int { return c.outstanding[app] }

// SetPriorityApp makes the scheduler serve the given app's requests first
// (the highest-priority epoch mechanism MISE and ASM rely on). Pass
// memreq.InvalidApp to restore plain FR-FCFS.
func (c *Controller) SetPriorityApp(app memreq.AppID) { c.prio = app }

// PriorityApp returns the currently prioritized app, or InvalidApp.
func (c *Controller) PriorityApp() memreq.AppID { return c.prio }

// Counters returns a copy of the app's cumulative counters.
func (c *Controller) Counters(app memreq.AppID) AppCounters { return c.apps[app] }

// Bus returns a copy of the bandwidth-decomposition counters.
func (c *Controller) Bus() BusCounters { return c.bus }

// ResetCounters zeroes all per-app and bus counters (start of an estimation
// interval). Bank and row-buffer state persists.
func (c *Controller) ResetCounters() {
	for i := range c.apps {
		c.apps[i] = AppCounters{}
	}
	c.bus = BusCounters{}
}

// Replies drains and returns the requests completed during the last Cycle.
func (c *Controller) Replies() []*memreq.Request {
	r := c.replies
	c.replies = c.replies[:0]
	return r
}

// Cycle advances the controller by one core cycle: completes transfers,
// schedules at most one new request into a bank (FR-FCFS), and updates the
// accounting counters.
func (c *Controller) Cycle(now uint64) {
	// 0. Periodic all-bank refresh: stall every bank for TRFC and close
	// all rows. Banks mid-transfer finish first (refresh starts after the
	// last busyUntil).
	if c.nextRefresh > 0 && now >= c.nextRefresh {
		start := now
		for i := range c.banks {
			if c.banks[i].busyUntil > start {
				start = c.banks[i].busyUntil
			}
		}
		end := start + c.cfg.TRFC
		for i := range c.banks {
			b := &c.banks[i]
			b.rowOpen = false
			if b.readyAt < end {
				b.readyAt = end
			}
		}
		c.Refreshes++
		c.nextRefresh += c.cfg.TREFI
	}

	// 1. Complete requests whose data transfer has finished.
	for i := range c.banks {
		b := &c.banks[i]
		if b.cur != nil && now >= b.busyUntil {
			r := b.cur
			ac := &c.apps[r.App]
			ac.Served++
			ac.TimeInBanks += b.busyUntil - r.BankEnter
			if b.curRowHit {
				ac.RowHits++
			} else {
				ac.RowMisses++
			}
			c.outstanding[r.App]--
			c.replies = append(c.replies, r)
			b.cur = nil
		}
	}

	// 2. FR-FCFS: pick one request to schedule into its bank this cycle.
	if bi, idx := c.pickRequest(now); bi >= 0 {
		c.schedule(bi, idx, now)
	}

	// 3. Bandwidth decomposition: only idle is observable per cycle (no
	// request anywhere); data is accounted at scheduling time and waste is
	// derived (see BusCounters).
	c.bus.Cycles++
	if now >= c.busBusyUntil && !c.busyOrPending() {
		c.bus.Idle++
	}

	// 4. BLP sampling.
	if now%blpSamplePeriod == 0 {
		c.sampleBLP()
	}
}

func (c *Controller) busyOrPending() bool {
	if c.queued > 0 {
		return true
	}
	for i := range c.banks {
		if c.banks[i].cur != nil {
			return true
		}
	}
	return false
}

// actAllowed reports whether a row activation may issue at now (tRRD from
// the last ACT, tFAW from the fourth-last).
func (c *Controller) actAllowed(now uint64) bool {
	if c.actCount >= 1 && c.cfg.TRRD > 0 && now < c.lastActs[3]+c.cfg.TRRD {
		return false
	}
	if c.actCount >= 4 && c.cfg.TFAW > 0 && now < c.lastActs[0]+c.cfg.TFAW {
		return false
	}
	return true
}

func (c *Controller) recordAct(now uint64) {
	copy(c.lastActs[:], c.lastActs[1:])
	c.lastActs[3] = now
	if c.actCount < 4 {
		c.actCount++
	}
}

// rowHitLookahead bounds how deep into a bank queue the scheduler searches
// for a row-buffer hit (FR-FCFS with bounded reordering).
const rowHitLookahead = 8

// pickRequest selects the (bank, queue index) of the request to schedule,
// or (-1, -1), according to the active scheduling policy.
func (c *Controller) pickRequest(now uint64) (int, int) {
	if c.queued == 0 {
		return -1, -1
	}
	if !c.cfg.AppAwareRR || c.numApps <= 1 {
		return c.pickFRFCFS(now, memreq.InvalidApp)
	}
	// Application-aware round-robin: serve the next application (in
	// rotation) that has an eligible request, FR-FCFS within it.
	for k := 0; k < c.numApps; k++ {
		app := memreq.AppID((int(c.rrNext) + k) % c.numApps)
		if c.outstanding[app] == 0 {
			continue
		}
		if bi, idx := c.pickFRFCFS(now, app); bi >= 0 {
			c.rrNext = memreq.AppID((int(app) + 1) % c.numApps)
			return bi, idx
		}
	}
	return -1, -1
}

// pickFRFCFS selects per FR-FCFS, optionally restricted to one application
// (only != InvalidApp). Per free bank the candidate is the first row hit
// within the lookahead window, else the head; across banks the order is
// priority app > row hit > oldest arrival. Requests needing an activation
// are ineligible while the tRRD/tFAW window forbids one.
func (c *Controller) pickFRFCFS(now uint64, only memreq.AppID) (int, int) {
	bestBank, bestIdx := -1, -1
	var bestSeq uint64
	bestHit := false
	bestPrio := false
	actOK := c.actAllowed(now)
	for bi := range c.banks {
		bnk := &c.banks[bi]
		if bnk.cur != nil || now < bnk.readyAt || len(c.queues[bi]) == 0 {
			continue
		}
		q := c.queues[bi]
		idx := -1
		hit := false
		// The prioritized app's oldest request in this bank preempts the
		// bank-local FR-FCFS choice (MISE/ASM's highest-priority epochs).
		if c.prio != memreq.InvalidApp && (only == memreq.InvalidApp || only == c.prio) {
			for k := 0; k < len(q) && k < rowHitLookahead; k++ {
				if q[k].App == c.prio {
					h := bnk.rowOpen && q[k].Row == bnk.openRow
					if !h && !actOK {
						break
					}
					idx, hit = k, h
					break
				}
			}
		}
		if idx == -1 && bnk.rowOpen {
			row := bnk.openRow
			for k := 0; k < len(q) && k < rowHitLookahead; k++ {
				if only != memreq.InvalidApp && q[k].App != only {
					continue
				}
				if q[k].Row == row {
					idx, hit = k, true
					break
				}
			}
		}
		if idx == -1 {
			if !actOK {
				continue // an ACT is needed and the power window forbids it
			}
			if only == memreq.InvalidApp {
				idx = 0
			} else {
				for k := 0; k < len(q) && k < rowHitLookahead; k++ {
					if q[k].App == only {
						idx = k
						break
					}
				}
				if idx == -1 {
					continue
				}
			}
		}
		r := q[idx]
		prio := c.prio != memreq.InvalidApp && r.App == c.prio
		better := bestBank == -1 ||
			(prio && !bestPrio) ||
			(prio == bestPrio && hit && !bestHit) ||
			(prio == bestPrio && hit == bestHit && r.BankEnter < bestSeq)
		if better {
			bestBank, bestIdx, bestSeq, bestHit, bestPrio = bi, idx, r.BankEnter, hit, prio
		}
	}
	return bestBank, bestIdx
}

// schedule moves the request at queues[bi][idx] into its bank and computes
// its service timeline.
func (c *Controller) schedule(bi, idx int, now uint64) {
	q := c.queues[bi]
	r := q[idx]
	c.queues[bi] = append(q[:idx], q[idx+1:]...)
	c.queued--
	c.queuedPerBank[int(r.App)*c.cfg.NumBanks+bi]--

	row := r.Row
	b := &c.banks[bi]

	// Row-buffer outcome and command latency.
	var cmdLat uint64
	rowHit := false
	switch {
	case b.rowOpen && b.openRow == row:
		cmdLat = c.cfg.TCAS
		rowHit = true
	case b.rowOpen: // conflict: precharge + activate + CAS
		cmdLat = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
		c.recordAct(now)
	default: // closed: activate + CAS
		cmdLat = c.cfg.TRCD + c.cfg.TCAS
		c.recordAct(now)
	}

	// Extra-row-buffer-miss detection (Eq. 10): the app re-opens the row it
	// accessed last in this bank, so the intervening close was interference.
	li := int(r.App)*c.cfg.NumBanks + bi
	if !rowHit && c.lastRowValid[li] && c.lastRow[li] == row {
		c.apps[r.App].ERBMiss++
	}
	c.lastRow[li] = row
	c.lastRowValid[li] = true

	b.rowOpen = true
	b.openRow = row

	// Data-bus reservation: the burst starts when both the bank commands
	// have completed and the bus is free.
	dataStart := now + cmdLat
	if dataStart < c.busBusyUntil {
		dataStart = c.busBusyUntil
	}
	dataEnd := dataStart + c.cfg.TBurst
	c.busBusyUntil = dataEnd

	b.cur = r
	b.curRowHit = rowHit
	b.busyUntil = dataEnd
	b.readyAt = dataEnd // next command to this bank after data completes
	r.BankEnter = now

	c.apps[r.App].DataBusCycles += c.cfg.TBurst
}

// sampleBLP takes one bank-level-parallelism sample for every app with
// outstanding work.
func (c *Controller) sampleBLP() {
	// execCount[app] = banks executing app's request; busyMask = banks the
	// app is executing on; the queued-bank masks come from the incremental
	// queuedPerBank counts, so no queue is rescanned.
	var execCount [16]int // supports up to 16 apps without allocation
	var busyMask [16]uint64
	nApps := c.numApps
	if nApps > len(execCount) {
		nApps = len(execCount)
	}
	var anyBusy uint64
	for i := range c.banks {
		if r := c.banks[i].cur; r != nil && int(r.App) < nApps {
			execCount[r.App]++
			busyMask[r.App] |= 1 << uint(i)
			anyBusy |= 1 << uint(i)
		}
	}
	for a := 0; a < nApps; a++ {
		if c.outstanding[a] == 0 {
			continue
		}
		var queuedMask uint64
		base := a * c.cfg.NumBanks
		for bi := 0; bi < c.cfg.NumBanks; bi++ {
			if c.queuedPerBank[base+bi] > 0 {
				queuedMask |= 1 << uint(bi)
			}
		}
		ac := &c.apps[a]
		ac.BLPSamples++
		ac.BLPAccessSum += uint64(execCount[a])
		ac.BLPSum += uint64(popcount(busyMask[a] | queuedMask))
		// Banks the app waits on that are busy with someone else's work.
		blockedByOther := queuedMask & anyBusy &^ busyMask[a]
		ac.BLPBlockedSum += uint64(popcount(blockedByOther))
	}
}

func popcount(v uint64) int { return bits.OnesCount64(v) }

// ForEachInFlight calls fn for every request the controller currently holds:
// buffered in a bank queue, in service in a bank, or completed but not yet
// drained by Replies. The simulator's conservation checker uses it to walk
// the live-request set.
func (c *Controller) ForEachInFlight(fn func(*memreq.Request)) {
	for _, q := range c.queues {
		for _, r := range q {
			fn(r)
		}
	}
	for i := range c.banks {
		if r := c.banks[i].cur; r != nil {
			fn(r)
		}
	}
	for _, r := range c.replies {
		fn(r)
	}
}

// CheckInvariants cross-checks the controller's incrementally maintained
// bookkeeping against from-scratch recounts of the queues and banks:
//
//   - queued equals the summed bank-queue lengths;
//   - every queuedPerBank counter equals a naive recount of its (app, bank);
//   - every outstanding counter equals the app's queued plus in-service
//     requests;
//   - every buffered request sits in the bank queue its address maps to and
//     carries Row equal to a fresh AddrMap.Row of its address (the cached-row
//     optimization never diverges from recomputation);
//   - a bank with a request in service has its row open.
//
// It is O(requests) and meant for debug runs (sim.WithInvariantChecks), not
// the per-cycle hot path.
func (c *Controller) CheckInvariants() error {
	total := 0
	counts := make([]int32, c.numApps*c.cfg.NumBanks)
	inService := make([]int, c.numApps)
	for b, q := range c.queues {
		total += len(q)
		for i, r := range q {
			if r == nil {
				return fmt.Errorf("dram %d: nil request at bank %d index %d", c.id, b, i)
			}
			if int(r.App) < 0 || int(r.App) >= c.numApps {
				return fmt.Errorf("dram %d: bank %d holds request with app %d outside [0,%d)", c.id, b, r.App, c.numApps)
			}
			if want := c.amap.Bank(r.Addr); want != b {
				return fmt.Errorf("dram %d: request %v queued at bank %d but maps to bank %d", c.id, r, b, want)
			}
			if want := c.amap.Row(r.Addr); r.Row != want {
				return fmt.Errorf("dram %d: request %v caches row %d but address maps to row %d", c.id, r, r.Row, want)
			}
			counts[int(r.App)*c.cfg.NumBanks+b]++
		}
	}
	if total != c.queued {
		return fmt.Errorf("dram %d: queued counter %d but bank queues hold %d", c.id, c.queued, total)
	}
	for i, want := range counts {
		if got := c.queuedPerBank[i]; got != want {
			return fmt.Errorf("dram %d: queuedPerBank[app %d][bank %d] = %d, recount %d",
				c.id, i/c.cfg.NumBanks, i%c.cfg.NumBanks, got, want)
		}
	}
	for bi := range c.banks {
		b := &c.banks[bi]
		if b.cur == nil {
			continue
		}
		// An all-bank refresh closes rows under an in-flight transfer: the
		// burst finishes (cur stays, busyUntil unchanged) while readyAt is
		// raised to the refresh-end fence. A closed row whose readyAt has
		// NOT been fenced past the transfer is real corruption.
		if !b.rowOpen && b.readyAt < b.busyUntil {
			return fmt.Errorf("dram %d: bank %d in service with no open row and no refresh fence", c.id, bi)
		}
		if int(b.cur.App) < 0 || int(b.cur.App) >= c.numApps {
			return fmt.Errorf("dram %d: bank %d serves request with app %d outside [0,%d)", c.id, bi, b.cur.App, c.numApps)
		}
		inService[b.cur.App]++
	}
	for a := 0; a < c.numApps; a++ {
		want := inService[a]
		for bi := 0; bi < c.cfg.NumBanks; bi++ {
			want += int(counts[a*c.cfg.NumBanks+bi])
		}
		if got := c.outstanding[a]; got != want {
			return fmt.Errorf("dram %d: outstanding[%d] = %d, queues+banks hold %d", c.id, a, got, want)
		}
	}
	return nil
}
