package dram

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
	"dasesim/internal/refmodel"
)

// fuzzMemConfig is a deliberately small controller so short fuzz inputs reach
// full queues, row conflicts, activation throttling, and refresh.
func fuzzMemConfig() config.MemConfig {
	return config.MemConfig{
		NumBanks:   4,
		RowBytes:   512,
		TRCD:       3,
		TRP:        3,
		TCAS:       2,
		TBurst:     4,
		TRRD:       2,
		TFAW:       10,
		QueueDepth: 16,
		TREFI:      200,
		TRFC:       20,
	}
}

const fuzzApps = 3

func fuzzAddrMap() memreq.AddrMap { return memreq.NewAddrMap(128, 1, 4, 512) }

// fuzzAddr spreads the operand byte across banks and rows: line addresses
// 0..255 cover every bank with several rows each under fuzzAddrMap.
func fuzzAddr(b byte) uint64 { return uint64(b) * 128 }

// FuzzControllerCounts drives a controller with an enqueue/cycle stream and,
// after every operation, recounts the bank queues from scratch with
// refmodel.CountQueued, comparing against the incrementally maintained
// queuedPerBank counters (and the rest of the controller's bookkeeping via
// CheckInvariants). Ops: byte%2 — 0 enqueue (operand byte: address and app),
// 1 advance one cycle.
func FuzzControllerCounts(f *testing.F) {
	f.Add([]byte("0a0b0c0d1111111111111111"))              // burst then drain
	f.Add([]byte("0a10b10c10d10e10f10g10h1"))              // interleaved
	f.Add([]byte("0a0a0a0a0a0a0a0a0a0a0a0a0a0a0a0a0a0a1")) // fill one bank to the queue cap
	f.Add([]byte("11111111111111111111111111111111"))      // idle cycles only
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewController(fuzzMemConfig(), fuzzAddrMap(), 0, fuzzApps)
		var now uint64
		for i := 0; i < len(data); i++ {
			switch data[i] % 2 {
			case 0: // enqueue
				if i+1 >= len(data) {
					return
				}
				i++
				if !c.CanAccept() {
					continue
				}
				b := data[i]
				c.Enqueue(&memreq.Request{App: memreq.AppID(b % fuzzApps), Addr: fuzzAddr(b)})
			case 1: // cycle
				c.Cycle(now)
				now++
				c.Replies() // drain completions like the partition does
			}
			recount := refmodel.CountQueued(c.queues, fuzzApps, c.cfg.NumBanks)
			for k, want := range recount {
				if got := c.queuedPerBank[k]; got != want {
					t.Fatalf("op %d: queuedPerBank[app %d][bank %d] = %d, naive recount %d",
						i, k/c.cfg.NumBanks, k%c.cfg.NumBanks, got, want)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
}

// FuzzFRFCFS drives a controller to arbitrary reachable states and compares
// the optimized pick (cached Request.Row, incremental eligibility) against
// refmodel.FRFCFSPick, which recomputes every row address from scratch, for
// every app restriction the engine can ask for. Ops: byte%3 — 0 enqueue
// (operand byte), 1 advance one cycle, 2 set priority app (operand byte;
// %4 == 3 clears it).
func FuzzFRFCFS(f *testing.F) {
	f.Add([]byte("0a0b0c0d111111110e0f111111"))    // plain FR-FCFS
	f.Add([]byte("2a0a0b0c11112b0d0e11112d11"))    // priority-app churn
	f.Add([]byte("0a0i0q0y111111110a0i111111"))    // same bank, distinct rows (conflicts)
	f.Add([]byte("0a0a0a0a0b0b0b0b1111111111111")) // row hits vs oldest arrival
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewController(fuzzMemConfig(), fuzzAddrMap(), 0, fuzzApps)
		var now uint64
		for i := 0; i < len(data); i++ {
			switch data[i] % 3 {
			case 0: // enqueue
				if i+1 >= len(data) {
					return
				}
				i++
				if !c.CanAccept() {
					continue
				}
				b := data[i]
				c.Enqueue(&memreq.Request{App: memreq.AppID(b % fuzzApps), Addr: fuzzAddr(b)})
			case 1: // cycle
				c.Cycle(now)
				now++
				c.Replies()
			case 2: // priority app
				if i+1 >= len(data) {
					return
				}
				i++
				app := memreq.AppID(data[i] % 4)
				if app == fuzzApps {
					app = memreq.InvalidApp
				}
				c.SetPriorityApp(app)
			}

			// Snapshot the scheduler-visible state for the reference model.
			banks := make([]refmodel.FRFCFSBank, len(c.banks))
			for bi := range c.banks {
				bnk := &c.banks[bi]
				rb := refmodel.FRFCFSBank{
					Free:    bnk.cur == nil && now >= bnk.readyAt,
					RowOpen: bnk.rowOpen,
					OpenRow: bnk.openRow,
				}
				for _, r := range c.queues[bi] {
					// While buffered, BankEnter holds the arrival sequence.
					rb.Queue = append(rb.Queue, refmodel.FRFCFSReq{App: r.App, Addr: r.Addr, Seq: r.BankEnter})
				}
				banks[bi] = rb
			}
			actOK := c.actAllowed(now)
			for only := memreq.AppID(-1); only < fuzzApps; only++ {
				gb, gi := c.pickFRFCFS(now, only)
				wb, wi := refmodel.FRFCFSPick(c.amap, banks, c.prio, only, actOK, rowHitLookahead)
				if gb != wb || gi != wi {
					t.Fatalf("op %d (only=%d prio=%d actOK=%v): optimized pick (%d,%d), reference (%d,%d)",
						i, only, c.prio, actOK, gb, gi, wb, wi)
				}
			}
		}
	})
}
