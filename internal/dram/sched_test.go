package dram

import (
	"testing"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

// rowConflictAddrs returns n addresses that all map to bank 0 but to n
// distinct rows (guaranteed pairwise conflicts).
func rowConflictAddrs(amap memreq.AddrMap, n int) []uint64 {
	var out []uint64
	rows := map[uint64]bool{}
	for a := uint64(0); len(out) < n; a += 128 {
		if amap.Bank(a) == 0 && !rows[amap.Row(a)] {
			rows[amap.Row(a)] = true
			out = append(out, a)
		}
	}
	return out
}

// sameRowAddrs returns n addresses in bank 0, all in one row.
func sameRowAddrs(amap memreq.AddrMap, n int) []uint64 {
	var base uint64
	for a := uint64(0); ; a += 128 {
		if amap.Bank(a) == 0 {
			base = a
			break
		}
	}
	row := amap.Row(base)
	out := []uint64{base}
	for a := base + 128; len(out) < n; a += 128 {
		if amap.Bank(a) == 0 && amap.Row(a) == row {
			out = append(out, a)
		}
	}
	return out
}

// TestAppAwareRRAlternates: with app-aware round-robin, a row-hit-rich app
// cannot monopolize a bank against a row-conflicting app.
func TestAppAwareRRAlternates(t *testing.T) {
	cfg := config.Default().Mem
	amap := memreq.NewAddrMap(128, 1, cfg.NumBanks, cfg.RowBytes)

	run := func(appRR bool) (app0First20, app1First20 int) {
		c := cfg
		c.AppAwareRR = appRR
		ctl := NewController(c, amap, 0, 2)
		// App 0: stream of row hits in bank 0. App 1: row conflicts in
		// bank 0.
		hits := sameRowAddrs(amap, 12)
		confl := rowConflictAddrs(amap, 12)
		for i := 0; i < 12; i++ {
			ctl.Enqueue(&memreq.Request{App: 0, Addr: hits[i]})
			ctl.Enqueue(&memreq.Request{App: 1, Addr: confl[i]})
		}
		var order []memreq.AppID
		for now := uint64(0); now < 20_000 && len(order) < 20; now++ {
			ctl.Cycle(now)
			for _, r := range ctl.Replies() {
				order = append(order, r.App)
			}
		}
		for _, a := range order {
			if a == 0 {
				app0First20++
			} else {
				app1First20++
			}
		}
		return
	}

	_, rrApp1 := run(true)
	_, frApp1 := run(false)
	if rrApp1 <= frApp1 {
		t.Fatalf("app-aware RR should serve the conflict-bound app more: rr=%d frfcfs=%d", rrApp1, frApp1)
	}
	if rrApp1 < 8 {
		t.Fatalf("app-aware RR should roughly alternate, app1 got only %d of 20", rrApp1)
	}
}

// TestRefreshClosesRowsAndCostsTime verifies refresh timing and the
// row-buffer side effect.
func TestRefreshClosesRowsAndCostsTime(t *testing.T) {
	cfg := config.Default().Mem
	cfg.TREFI = 2_000
	cfg.TRFC = 300
	amap := memreq.NewAddrMap(128, 1, cfg.NumBanks, cfg.RowBytes)
	c := NewController(cfg, amap, 0, 1)
	addrs := sameRowAddrs(amap, 2)

	// Serve one request to open the row.
	c.Enqueue(&memreq.Request{App: 0, Addr: addrs[0]})
	served := 0
	now := uint64(0)
	for ; served < 1; now++ {
		c.Cycle(now)
		served += len(c.Replies())
	}

	// Advance past the refresh deadline.
	for ; now < 2_500; now++ {
		c.Cycle(now)
	}
	if c.Refreshes == 0 {
		t.Fatal("no refresh performed")
	}

	// Same-row access after refresh must be a row MISS (row closed).
	c.Enqueue(&memreq.Request{App: 0, Addr: addrs[1]})
	for served = 0; served < 1; now++ {
		c.Cycle(now)
		served += len(c.Replies())
	}
	cnt := c.Counters(0)
	if cnt.RowHits != 0 {
		t.Fatalf("row survived refresh: hits=%d misses=%d", cnt.RowHits, cnt.RowMisses)
	}
}

// TestRefreshThroughputCost: under saturation, enabling refresh must reduce
// served throughput by roughly TRFC/TREFI.
func TestRefreshThroughputCost(t *testing.T) {
	base := config.Default().Mem
	amap := memreq.NewAddrMap(128, 1, base.NumBanks, base.RowBytes)
	serve := func(cfg config.MemConfig) int {
		c := NewController(cfg, amap, 0, 1)
		queued, served := 0, 0
		for now := uint64(0); now < 30_000; now++ {
			for c.CanAccept() && queued < 10_000 {
				c.Enqueue(&memreq.Request{App: 0, Addr: uint64(queued) * 128})
				queued++
			}
			c.Cycle(now)
			served += len(c.Replies())
		}
		return served
	}
	without := serve(base)
	withRefresh := base
	withRefresh.TREFI = 2_000
	withRefresh.TRFC = 400 // 20% refresh overhead, exaggerated for signal
	with := serve(withRefresh)
	if with >= without {
		t.Fatalf("refresh did not cost throughput: %d vs %d", with, without)
	}
	if float64(with) < float64(without)*0.6 {
		t.Fatalf("refresh cost too much: %d vs %d", with, without)
	}
}

// TestPriorityAppWithNoRequestsDoesNotStarveOthers: setting the priority
// app to one with an empty queue must not block the other apps' service.
func TestPriorityAppWithNoRequestsDoesNotStarveOthers(t *testing.T) {
	cfg := config.Default().Mem
	amap := memreq.NewAddrMap(128, 1, cfg.NumBanks, cfg.RowBytes)
	c := NewController(cfg, amap, 0, 2)
	c.SetPriorityApp(1) // app 1 never enqueues anything
	for i := 0; i < 8; i++ {
		c.Enqueue(&memreq.Request{App: 0, Addr: uint64(i) * 128})
	}
	served := 0
	for now := uint64(0); now < 5000 && served < 8; now++ {
		c.Cycle(now)
		served += len(c.Replies())
	}
	if served != 8 {
		t.Fatalf("served %d of 8 with an idle priority app", served)
	}
}

// TestAppAwareRRSingleAppDegeneratesToFRFCFS: with one app, the RR scheduler
// must behave like plain FR-FCFS.
func TestAppAwareRRSingleAppDegeneratesToFRFCFS(t *testing.T) {
	cfg := config.Default().Mem
	cfg.AppAwareRR = true
	amap := memreq.NewAddrMap(128, 1, cfg.NumBanks, cfg.RowBytes)
	c := NewController(cfg, amap, 0, 1)
	c.Enqueue(&memreq.Request{App: 0, Addr: 0})
	served := 0
	for now := uint64(0); now < 1000 && served == 0; now++ {
		c.Cycle(now)
		served += len(c.Replies())
	}
	if served != 1 {
		t.Fatal("single-app RR failed to serve")
	}
}
