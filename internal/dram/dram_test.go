package dram

import (
	"testing"
	"testing/quick"

	"dasesim/internal/config"
	"dasesim/internal/memreq"
)

func testSetup() (config.MemConfig, memreq.AddrMap) {
	cfg := config.Default().Mem
	amap := memreq.NewAddrMap(128, 1, cfg.NumBanks, cfg.RowBytes) // single partition
	return cfg, amap
}

// runUntil advances the controller until the predicate holds or the cycle
// budget runs out, returning the cycle count used.
func runUntil(c *Controller, limit uint64, done func() bool) uint64 {
	var now uint64
	for ; now < limit; now++ {
		c.Cycle(now)
		if done() {
			return now
		}
	}
	return now
}

func TestSingleRequestClosedRowTiming(t *testing.T) {
	cfg, amap := testSetup()
	c := NewController(cfg, amap, 0, 1)
	r := &memreq.Request{App: 0, Addr: 0}
	c.Enqueue(r)
	var replies []*memreq.Request
	end := runUntil(c, 1000, func() bool {
		replies = append(replies, c.Replies()...)
		return len(replies) == 1
	})
	// Closed row: the request is scheduled at cycle 0 and its data
	// completes tRCD + tCAS + tBurst cycles later; the completion scan at
	// the start of that Cycle call delivers the reply.
	want := cfg.TRCD + cfg.TCAS + cfg.TBurst
	if end != want {
		t.Fatalf("closed-row service took %d cycles, want %d", end, want)
	}
	if got := c.Counters(0).Served; got != 1 {
		t.Fatalf("served = %d", got)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg, amap := testSetup()

	serve2 := func(second uint64) uint64 {
		c := NewController(cfg, amap, 0, 1)
		c.Enqueue(&memreq.Request{App: 0, Addr: 0})
		c.Enqueue(&memreq.Request{App: 0, Addr: second})
		served := 0
		return runUntil(c, 4000, func() bool {
			served += len(c.Replies())
			return served == 2
		})
	}

	sameRow := serve2(128)                               // next line, same row
	conflict := serve2(uint64(cfg.RowBytes) * 16 * 1024) // far away: same bank risk low; compute a real conflict below

	// Find an address that maps to bank 0 like addr 0 but another row.
	var conflictAddr uint64
	for a := uint64(1); ; a++ {
		addr := a * 128
		if amap.Bank(addr) == amap.Bank(0) && amap.Row(addr) != amap.Row(0) {
			conflictAddr = addr
			break
		}
	}
	conflict = serve2(conflictAddr)

	if sameRow >= conflict {
		t.Fatalf("row hit (%d cycles) not faster than conflict (%d cycles)", sameRow, conflict)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg, amap := testSetup()
	c := NewController(cfg, amap, 0, 2)
	// Open a row with app 0's request.
	first := &memreq.Request{App: 0, Addr: 0}
	c.Enqueue(first)
	served := 0
	runUntil(c, 1000, func() bool {
		served += len(c.Replies())
		return served == 1
	})
	// Two candidates in the same bank: app 1 older (row conflict), app 0
	// newer (row hit). FR-FCFS must serve the row hit first.
	var conflictAddr uint64
	for a := uint64(1); ; a++ {
		addr := a * 128
		if amap.Bank(addr) == amap.Bank(0) && amap.Row(addr) != amap.Row(0) {
			conflictAddr = addr
			break
		}
	}
	older := &memreq.Request{App: 1, Addr: conflictAddr}
	newer := &memreq.Request{App: 0, Addr: 128}
	c.Enqueue(older)
	c.Enqueue(newer)
	var order []memreq.AppID
	runUntil(c, 4000, func() bool {
		for _, r := range c.Replies() {
			order = append(order, r.App)
		}
		return len(order) == 2
	})
	if order[0] != 0 {
		t.Fatalf("row-hit request should be served first, order=%v", order)
	}
	if c.Counters(0).RowHits == 0 {
		t.Fatal("row hit not recorded")
	}
}

func TestPriorityAppOverridesRowHit(t *testing.T) {
	cfg, amap := testSetup()
	c := NewController(cfg, amap, 0, 2)
	c.SetPriorityApp(1)
	if c.PriorityApp() != 1 {
		t.Fatal("priority app not set")
	}
	first := &memreq.Request{App: 0, Addr: 0}
	c.Enqueue(first)
	served := 0
	runUntil(c, 1000, func() bool {
		served += len(c.Replies())
		return served == 1
	})
	var conflictAddr uint64
	for a := uint64(1); ; a++ {
		addr := a * 128
		if amap.Bank(addr) == amap.Bank(0) && amap.Row(addr) != amap.Row(0) {
			conflictAddr = addr
			break
		}
	}
	c.Enqueue(&memreq.Request{App: 0, Addr: 128}) // row hit, app 0
	c.Enqueue(&memreq.Request{App: 1, Addr: conflictAddr})
	var order []memreq.AppID
	runUntil(c, 4000, func() bool {
		for _, r := range c.Replies() {
			order = append(order, r.App)
		}
		return len(order) == 2
	})
	if order[0] != 1 {
		t.Fatalf("prioritized app must be served first, order=%v", order)
	}
}

func TestERBMissDetection(t *testing.T) {
	cfg, amap := testSetup()
	c := NewController(cfg, amap, 0, 2)
	var conflictAddr uint64
	for a := uint64(1); ; a++ {
		addr := a * 128
		if amap.Bank(addr) == amap.Bank(0) && amap.Row(addr) != amap.Row(0) {
			conflictAddr = addr
			break
		}
	}
	serveOne := func(r *memreq.Request) {
		c.Enqueue(r)
		served := 0
		runUntil(c, 4000, func() bool {
			served += len(c.Replies())
			return served == 1
		})
	}
	serveOne(&memreq.Request{App: 0, Addr: 0})            // app 0 opens row R
	serveOne(&memreq.Request{App: 1, Addr: conflictAddr}) // app 1 closes it
	serveOne(&memreq.Request{App: 0, Addr: 128})          // app 0 re-opens R: extra row-buffer miss
	if got := c.Counters(0).ERBMiss; got != 1 {
		t.Fatalf("ERBMiss = %d, want 1", got)
	}
	if got := c.Counters(1).ERBMiss; got != 0 {
		t.Fatalf("app 1 ERBMiss = %d, want 0", got)
	}
}

func TestActivationThrottling(t *testing.T) {
	cfg, amap := testSetup()
	// All requests to different rows/banks: every one needs an ACT, so the
	// tFAW window (4 ACTs / TFAW cycles) bounds throughput.
	c := NewController(cfg, amap, 0, 1)
	queued := 0
	served := 0
	var now uint64
	budget := uint64(6000)
	for ; now < budget; now++ {
		for c.CanAccept() && queued < 400 {
			// Stride by rows so every request misses.
			c.Enqueue(&memreq.Request{App: 0, Addr: uint64(queued) * uint64(cfg.RowBytes)})
			queued++
		}
		c.Cycle(now)
		served += len(c.Replies())
	}
	maxByFAW := float64(budget) / float64(cfg.TFAW) * 4
	if float64(served) > maxByFAW*1.1 {
		t.Fatalf("served %d all-miss requests in %d cycles, tFAW bound is ~%.0f", served, budget, maxByFAW)
	}
	if served == 0 {
		t.Fatal("nothing served")
	}
}

func TestBandwidthAccountingIdentity(t *testing.T) {
	cfg, amap := testSetup()
	c := NewController(cfg, amap, 0, 1)
	queued, served := 0, 0
	var now uint64
	for ; now < 5000; now++ {
		for c.CanAccept() && queued < 300 {
			c.Enqueue(&memreq.Request{App: 0, Addr: uint64(queued) * 128})
			queued++
		}
		c.Cycle(now)
		served += len(c.Replies())
	}
	bus := c.Bus()
	data := c.Counters(0).DataBusCycles
	if bus.Cycles != now {
		t.Fatalf("bus cycles %d != %d", bus.Cycles, now)
	}
	wasted := bus.Wasted(data)
	if data+wasted+bus.Idle > bus.Cycles {
		t.Fatalf("decomposition exceeds total: data=%d wasted=%d idle=%d cycles=%d",
			data, wasted, bus.Idle, bus.Cycles)
	}
	if data == 0 {
		t.Fatal("no data cycles accounted")
	}
	if data != uint64(served+boundInService(c))*cfg.TBurst && data < uint64(served)*cfg.TBurst {
		t.Fatalf("data cycles %d inconsistent with %d served * %d burst", data, served, cfg.TBurst)
	}
}

// boundInService counts requests scheduled into banks but not completed.
func boundInService(c *Controller) int {
	n := 0
	for i := range c.banks {
		if c.banks[i].cur != nil {
			n++
		}
	}
	return n
}

func TestBLPCounters(t *testing.T) {
	cfg, amap := testSetup()
	c := NewController(cfg, amap, 0, 2)
	// Load many app-0 requests across banks plus a few app-1 ones.
	for i := 0; i < 64; i++ {
		c.Enqueue(&memreq.Request{App: 0, Addr: uint64(i) * uint64(cfg.RowBytes)})
	}
	for i := 0; i < 8; i++ {
		c.Enqueue(&memreq.Request{App: 1, Addr: uint64(i+64) * uint64(cfg.RowBytes)})
	}
	for now := uint64(0); now < 2000; now++ {
		c.Cycle(now)
		c.Replies()
	}
	c0, c1 := c.Counters(0), c.Counters(1)
	if c0.BLPSamples == 0 || c1.BLPSamples == 0 {
		t.Fatal("no BLP samples taken")
	}
	if c0.BLP() <= 0 || c0.BLP() > float64(cfg.NumBanks) {
		t.Fatalf("BLP out of range: %v", c0.BLP())
	}
	if c0.BLPAccess() > c0.BLP()+1e-9 {
		t.Fatalf("BLPAccess %v exceeds BLP %v", c0.BLPAccess(), c0.BLP())
	}
	if c1.BLPBlocked() <= 0 {
		t.Fatal("app 1 must observe banks blocked by app 0")
	}
}

func TestOutstandingAndResetCounters(t *testing.T) {
	cfg, amap := testSetup()
	c := NewController(cfg, amap, 0, 1)
	c.Enqueue(&memreq.Request{App: 0, Addr: 0})
	if c.Outstanding(0) != 1 || c.QueueLen() != 1 {
		t.Fatal("outstanding/queue accounting broken")
	}
	served := 0
	runUntil(c, 1000, func() bool {
		served += len(c.Replies())
		return served == 1
	})
	if c.Outstanding(0) != 0 {
		t.Fatal("outstanding not decremented on completion")
	}
	c.ResetCounters()
	if c.Counters(0).Served != 0 || c.Bus().Cycles != 0 {
		t.Fatal("counters survived reset")
	}
}

// TestAllRequestsEventuallyServedProperty: any batch of requests drains.
func TestAllRequestsEventuallyServedProperty(t *testing.T) {
	cfg, amap := testSetup()
	f := func(seeds []uint16) bool {
		if len(seeds) > 100 {
			seeds = seeds[:100]
		}
		c := NewController(cfg, amap, 0, 2)
		for i, s := range seeds {
			c.Enqueue(&memreq.Request{App: memreq.AppID(i % 2), Addr: uint64(s) * 128})
		}
		served := 0
		for now := uint64(0); now < 100_000 && served < len(seeds); now++ {
			c.Cycle(now)
			served += len(c.Replies())
		}
		return served == len(seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
