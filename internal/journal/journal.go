// Package journal implements the dased daemon's durable job journal: an
// append-only write-ahead log of job lifecycle records. Every record is
// framed as an 8-byte header — big-endian uint32 payload length, then
// big-endian CRC-32 (IEEE) of the payload — followed by the record's JSON
// encoding. Appends fsync before returning ("fsync-on-commit"), so a record
// returned from Append survives a process kill.
//
// A crash mid-append leaves a torn tail: a short frame or one whose CRC or
// JSON does not check out. Open detects the first bad frame, truncates the
// file back to the last good record, and replays only the intact prefix —
// corruption never poisons recovery.
//
// Rewrite compacts the journal by atomically replacing the file (write to a
// temporary sibling, fsync, rename) with a snapshot of the records that
// still matter; the server calls it when terminal records dominate.
package journal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dasesim/internal/faults"
)

// Lifecycle ops recorded by the server. Replay treats finished and canceled
// as terminal; everything else is re-enqueued.
const (
	OpSubmitted = "submitted"
	OpStarted   = "started"
	OpFinished  = "finished"
	OpCanceled  = "canceled"
)

// Record is one journal entry. Seq and Time are assigned by Append; Data is
// an op-specific payload owned by the caller (the server stores its request
// and result snapshots there, keeping this package schema-free).
type Record struct {
	Seq   uint64          `json:"seq"`
	Time  time.Time       `json:"time"`
	Op    string          `json:"op"`
	JobID string          `json:"job_id"`
	Data  json.RawMessage `json:"data,omitempty"`
}

const (
	headerSize = 8
	// maxRecordSize rejects absurd frame lengths during replay, which is how
	// a corrupt header manifests.
	maxRecordSize = 16 << 20
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Journal is an open journal file. All methods are safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	seq    uint64
	count  int // records currently in the file
	closed bool
}

// Open opens (creating if needed) the journal at path, replays its intact
// records, truncates any torn tail, and returns the journal positioned for
// appending.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	records, goodOff, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail, if any, so the next append starts on a clean
	// frame boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > goodOff {
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek: %w", err)
	}
	j := &Journal{path: path, f: f, count: len(records)}
	if n := len(records); n > 0 {
		j.seq = records[n-1].Seq
	}
	return j, records, nil
}

// replay reads intact records from the start of f and returns them with the
// offset just past the last good frame. Corruption is not an error — it
// marks the end of the intact prefix.
func replay(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: seek: %w", err)
	}
	var (
		records []Record
		off     int64
		hdr     [headerSize]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// io.EOF is a clean end; ErrUnexpectedEOF is a torn header.
			return records, off, nil
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordSize {
			return records, off, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, off, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, off, nil
		}
		records = append(records, rec)
		off += headerSize + int64(length)
	}
}

// frame encodes rec as header + payload.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal: %w", err)
	}
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf, nil
}

// Append assigns rec's sequence number and timestamp, writes it, and fsyncs
// before returning. ctx bounds the "journal.append" fault-injection point
// (armed sleeps end at the deadline); the write itself is not interruptible.
func (j *Journal) Append(ctx context.Context, rec Record) error {
	if err := faults.FireCtx(ctx, "journal.append"); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	rec.Seq = j.seq + 1
	rec.Time = time.Now().UTC()
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.seq = rec.Seq
	j.count++
	return nil
}

// Len reports the number of records in the file (replayed plus appended, or
// the snapshot size after the latest Rewrite). The server compares it to its
// live-job count to decide when to compact.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Rewrite atomically replaces the journal's contents with recs (sequence
// numbers are reassigned; timestamps are preserved). The replacement is
// crash-safe: the snapshot is written and fsynced to a temporary sibling,
// then renamed over the journal, so a kill at any point leaves either the
// old or the new file intact.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	tmp := j.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	var seq uint64
	for _, rec := range recs {
		seq++
		rec.Seq = seq
		buf, err := frame(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: rewrite: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: rewrite sync: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: rewrite rename: %w", err)
	}
	// f now refers to the renamed file and is positioned at its end. The
	// journal switches to it regardless of what the directory sync below
	// reports — the rename has happened.
	j.f.Close()
	j.f = f
	j.seq = seq
	j.count = len(recs)
	// fsync the parent directory so the rename itself survives power loss:
	// data blocks and the inode were made durable by f.Sync above, but the
	// directory entry pointing the journal's name at the new inode is its
	// own write. A failure is surfaced (the caller counts it) even though
	// both the old and the new file contents are individually durable — an
	// unsynced rename can roll back to the pre-compaction journal after a
	// power cut, silently resurrecting forgotten records.
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		return fmt.Errorf("journal: rewrite dirsync: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, making renames inside it durable. The
// "journal.dirsync" fault point injects the failure modes of the real call
// (filesystems that reject directory fsync, dying disks).
func syncDir(dir string) error {
	if err := faults.Fire("journal.dirsync"); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load replays the journal at path without opening it for appending: the
// intact record prefix is returned and the file is left untouched (a torn
// tail is not truncated). The cluster layer uses it to read a dead peer's
// claimed journal during job hand-off.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: load: %w", err)
	}
	defer f.Close()
	records, _, err := replay(f)
	return records, err
}

// Close syncs and closes the file. Further Appends return ErrClosed; Close
// is idempotent. Closing without a final sync is how tests simulate a crash
// (any buffered state is already on disk because Append syncs).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: close sync: %w", syncErr)
	}
	return closeErr
}
