package journal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dasesim/internal/faults"
)

func openT(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func appendT(t *testing.T, j *Journal, op, id string, data any) {
	t.Helper()
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			t.Fatal(err)
		}
		raw = b
	}
	if err := j.Append(context.Background(), Record{Op: op, JobID: id, Data: raw}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendReplayRoundTrip writes records, reopens, and checks everything
// comes back in order with sequence numbers and payloads intact.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	appendT(t, j, OpSubmitted, "job-1", map[string]int{"cycles": 100})
	appendT(t, j, OpStarted, "job-1", nil)
	appendT(t, j, OpFinished, "job-1", map[string]string{"status": "done"})
	if j.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs = openT(t, path)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	wantOps := []string{OpSubmitted, OpStarted, OpFinished}
	for i, rec := range recs {
		if rec.Op != wantOps[i] || rec.JobID != "job-1" {
			t.Fatalf("record %d: %+v", i, rec)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d", i, rec.Seq)
		}
		if rec.Time.IsZero() {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
	var d map[string]int
	if err := json.Unmarshal(recs[0].Data, &d); err != nil || d["cycles"] != 100 {
		t.Fatalf("payload round-trip: %v %v", d, err)
	}
}

// TestTornTailTruncated simulates a crash mid-append: a partial frame at the
// tail is dropped on reopen and the file is truncated back to the last good
// record, after which appends continue cleanly.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendT(t, j, OpSubmitted, "job-1", nil)
	appendT(t, j, OpSubmitted, "job-2", nil)
	j.Close()
	goodSize := fileSize(t, path)

	// A torn frame: a valid-looking header promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], 500)
	binary.BigEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	f.Write(hdr[:])
	f.Write([]byte("partial"))
	f.Close()

	j2, recs := openT(t, path)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if got := fileSize(t, path); got != goodSize {
		t.Fatalf("torn tail not truncated: size %d, want %d", got, goodSize)
	}
	// Appends after truncation land on a clean boundary.
	appendT(t, j2, OpSubmitted, "job-3", nil)
	j2.Close()
	_, recs = openT(t, path)
	if len(recs) != 3 || recs[2].JobID != "job-3" {
		t.Fatalf("post-truncation append lost: %+v", recs)
	}
}

// TestCorruptRecordStopsReplay flips a payload byte mid-file: replay keeps
// the prefix and drops the corrupt record and everything after it (the CRC
// guards against poisoned replay, not just torn tails).
func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendT(t, j, OpSubmitted, "job-1", nil)
	off := fileSize(t, path) // start of record 2
	appendT(t, j, OpSubmitted, "job-2", nil)
	appendT(t, j, OpSubmitted, "job-3", nil)
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off+8] ^= 0xff // corrupt record 2's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs := openT(t, path)
	if len(recs) != 1 || recs[0].JobID != "job-1" {
		t.Fatalf("replay after corruption: %+v", recs)
	}
	if got := fileSize(t, path); got != off {
		t.Fatalf("file not truncated at corruption: %d, want %d", got, off)
	}
}

// TestGarbageFileReplaysEmpty proves a journal full of noise replays as
// empty instead of failing Open.
func TestGarbageFileReplaysEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("garbage replayed %d records", len(recs))
	}
}

// TestRewriteCompacts checks Rewrite atomically replaces contents, reassigns
// sequence numbers, and that the compacted file replays alone.
func TestRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	for i := 0; i < 20; i++ {
		appendT(t, j, OpSubmitted, "job-old", nil)
	}
	big := fileSize(t, path)
	keep := []Record{
		{Op: OpSubmitted, JobID: "job-9", Time: time.Unix(100, 0).UTC()},
		{Op: OpFinished, JobID: "job-9", Time: time.Unix(200, 0).UTC()},
	}
	if err := j.Rewrite(keep); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("Len after rewrite = %d", j.Len())
	}
	if got := fileSize(t, path); got >= big {
		t.Fatalf("rewrite did not shrink the file: %d >= %d", got, big)
	}
	// The journal stays appendable after the file swap.
	appendT(t, j, OpStarted, "job-10", nil)
	j.Close()
	_, recs := openT(t, path)
	if len(recs) != 3 {
		t.Fatalf("replay after rewrite: %d records, want 3", len(recs))
	}
	if recs[0].JobID != "job-9" || recs[1].Op != OpFinished || recs[2].JobID != "job-10" {
		t.Fatalf("unexpected records: %+v", recs)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d after rewrite", i, rec.Seq)
		}
	}
	if _, err := os.Stat(path + ".compact"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temporary compact file left behind: %v", err)
	}
}

// TestAppendAfterCloseFails checks ErrClosed and Close idempotency.
func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	err := j.Append(context.Background(), Record{Op: OpSubmitted, JobID: "job-1"})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// TestAppendFaultInjection proves the journal.append point can fail and
// deadline-bound appends.
func TestAppendFaultInjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)

	reg := faults.New(1)
	reg.Arm(faults.Spec{Point: "journal.append", Mode: faults.ModeError, Count: 1})
	faults.Activate(reg)
	defer faults.Deactivate()

	err := j.Append(context.Background(), Record{Op: OpSubmitted, JobID: "job-1"})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("append: %v, want injected", err)
	}
	// The failed append wrote nothing.
	if j.Len() != 0 {
		t.Fatalf("Len = %d after injected failure", j.Len())
	}
	// Exhausted: the next append succeeds.
	if err := j.Append(context.Background(), Record{Op: OpSubmitted, JobID: "job-1"}); err != nil {
		t.Fatal(err)
	}

	// Deadline overrun: an armed sleep ends at the context deadline.
	reg.Arm(faults.Spec{Point: "journal.append", Mode: faults.ModeSleep, Delay: time.Hour, Count: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = j.Append(ctx, Record{Op: OpStarted, JobID: "job-1"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline append: %v", err)
	}
}

// TestCRCMatchesStdlib pins the frame format: 4-byte big-endian length,
// 4-byte big-endian CRC-32 (IEEE) of the JSON payload.
func TestCRCMatchesStdlib(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendT(t, j, OpSubmitted, "job-1", nil)
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 {
		t.Fatalf("file too short: %d", len(data))
	}
	length := binary.BigEndian.Uint32(data[0:4])
	sum := binary.BigEndian.Uint32(data[4:8])
	payload := data[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != sum {
		t.Fatal("stored CRC does not match payload")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatalf("payload is not JSON: %v", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestDirsyncFaultSurfaced exercises the journal.dirsync failure path: a
// compaction whose parent-directory fsync fails must report the error —
// the rename may roll back after power loss — while leaving the journal
// consistent and appendable (the data itself is durable in one of the two
// files).
func TestDirsyncFaultSurfaced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendT(t, j, OpSubmitted, "job-1", nil)
	appendT(t, j, OpFinished, "job-1", nil)

	reg := faults.New(9)
	reg.Arm(faults.Spec{Point: "journal.dirsync", Mode: faults.ModeError, Count: 1})
	faults.Activate(reg)
	defer faults.Deactivate()

	err := j.Rewrite([]Record{{Op: OpSubmitted, JobID: "job-1", Time: time.Now()}})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Rewrite with failing dirsync: %v, want ErrInjected", err)
	}
	if reg.Fired("journal.dirsync") != 1 {
		t.Fatal("dirsync point never fired")
	}
	// The rename happened before the failed sync: the journal switched to
	// the compacted file and keeps working.
	if j.Len() != 1 {
		t.Fatalf("Len = %d after failed-dirsync compaction, want 1", j.Len())
	}
	appendT(t, j, OpStarted, "job-1", nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, path)
	if len(recs) != 2 || recs[0].Op != OpSubmitted || recs[1].Op != OpStarted {
		t.Fatalf("reopen after failed dirsync replayed %+v", recs)
	}
}

// TestRewriteDirsyncSucceeds pins the success path: an unarmed registry and a
// real directory fsync report no error.
func TestRewriteDirsyncSucceeds(t *testing.T) {
	faults.Deactivate()
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendT(t, j, OpSubmitted, "job-1", nil)
	if err := j.Rewrite([]Record{{Op: OpFinished, JobID: "job-1", Time: time.Now()}}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
}

// TestLoadReadsWithoutTruncating proves Load replays the intact prefix of
// another node's journal without mutating the file — the hand-off claimant
// must never rewrite history it does not own yet.
func TestLoadReadsWithoutTruncating(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendT(t, j, OpSubmitted, "job-1", map[string]int{"n": 1})
	appendT(t, j, OpStarted, "job-1", nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: half a header.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before := fileSize(t, path)

	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].JobID != "job-1" {
		t.Fatalf("Load replayed %+v", recs)
	}
	if after := fileSize(t, path); after != before {
		t.Fatalf("Load mutated the file: %d -> %d bytes", before, after)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.wal")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}
