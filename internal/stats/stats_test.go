package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	if !math.IsNaN(o.Mean()) {
		t.Fatal("empty mean should be NaN")
	}
	for _, v := range []float64{3, 1, 2} {
		o.Add(v)
	}
	if o.Count != 3 || o.Min != 1 || o.Max != 3 || o.Mean() != 2 {
		t.Fatalf("online = %+v mean=%v", o, o.Mean())
	}
}

func TestOnlineMerge(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(2)
	b.Add(10)
	a.Merge(b)
	if a.Count != 3 || a.Max != 10 || a.Min != 1 {
		t.Fatalf("merged = %+v", a)
	}
	var empty Online
	a.Merge(empty)
	if a.Count != 3 {
		t.Fatal("merging empty changed state")
	}
	empty.Merge(a)
	if empty.Count != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestOnlineMergeEquivalenceProperty(t *testing.T) {
	f := func(xs []uint16, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var whole, a, b Online
		for i, x := range xs {
			whole.Add(float64(x))
			if i < k {
				a.Add(float64(x))
			} else {
				b.Add(float64(x))
			}
		}
		a.Merge(b)
		return a.Count == whole.Count && a.Sum == whole.Sum && a.Min == whole.Min && a.Max == whole.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistBuckets(t *testing.T) {
	var h LogHist
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(4)
	h.Add(1023)
	if h.Buckets[0] != 2 { // {0,1}
		t.Fatalf("bucket 0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 2 { // [2,4)
		t.Fatalf("bucket 1 = %d", h.Buckets[1])
	}
	if h.Buckets[2] != 1 { // [4,8)
		t.Fatalf("bucket 2 = %d", h.Buckets[2])
	}
	if h.Buckets[9] != 1 { // [512,1024)
		t.Fatalf("bucket 9 = %d", h.Buckets[9])
	}
	if h.Total != 6 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestLogHistQuantile(t *testing.T) {
	var h LogHist
	for i := 0; i < 99; i++ {
		h.Add(10) // bucket [8,16)
	}
	h.Add(5000) // bucket [4096,8192)
	if q := h.Quantile(0.5); q != 16 {
		t.Fatalf("p50 = %d, want 16", q)
	}
	if q := h.Quantile(1.0); q != 8192 {
		t.Fatalf("p100 = %d, want 8192", q)
	}
	var empty LogHist
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestLogHistMergeConservesProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b, whole LogHist
		for _, x := range xs {
			a.Add(uint64(x))
			whole.Add(uint64(x))
		}
		for _, y := range ys {
			b.Add(uint64(y))
			whole.Add(uint64(y))
		}
		a.Merge(&b)
		if a.Total != whole.Total {
			return false
		}
		for i := range a.Buckets {
			if a.Buckets[i] != whole.Buckets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
