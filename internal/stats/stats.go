// Package stats provides the small streaming-statistics helpers the
// simulator uses for latency and interval metrics: an online accumulator
// (count/mean/min/max) and a power-of-two-bucketed histogram suitable for
// long-tailed latency distributions.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Online accumulates count, sum, min and max of a stream without storing it.
type Online struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// Add folds one observation in.
func (o *Online) Add(v float64) {
	if o.Count == 0 || v < o.Min {
		o.Min = v
	}
	if o.Count == 0 || v > o.Max {
		o.Max = v
	}
	o.Count++
	o.Sum += v
}

// Mean returns the running mean (NaN when empty).
func (o *Online) Mean() float64 {
	if o.Count == 0 {
		return math.NaN()
	}
	return o.Sum / float64(o.Count)
}

// Merge folds another accumulator in.
func (o *Online) Merge(other Online) {
	if other.Count == 0 {
		return
	}
	if o.Count == 0 {
		*o = other
		return
	}
	if other.Min < o.Min {
		o.Min = other.Min
	}
	if other.Max > o.Max {
		o.Max = other.Max
	}
	o.Count += other.Count
	o.Sum += other.Sum
}

// LogHist buckets non-negative integer observations by power of two:
// bucket k holds values in [2^k, 2^(k+1)) and bucket 0 holds {0, 1}.
type LogHist struct {
	Buckets [40]uint64
	Total   uint64
}

// Add folds one observation in.
func (h *LogHist) Add(v uint64) {
	k := 0
	for v > 1 && k < len(h.Buckets)-1 {
		v >>= 1
		k++
	}
	h.Buckets[k]++
	h.Total++
}

// Merge folds another histogram in.
func (h *LogHist) Merge(other *LogHist) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Total += other.Total
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the upper
// edge of the bucket containing it.
func (h *LogHist) Quantile(q float64) uint64 {
	if h.Total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for k, c := range h.Buckets {
		cum += c
		if cum >= target {
			return uint64(1) << uint(k+1)
		}
	}
	return uint64(1) << uint(len(h.Buckets))
}

// String renders the non-empty buckets.
func (h *LogHist) String() string {
	var b strings.Builder
	for k, c := range h.Buckets {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%d,%d):%d ", uint64(1)<<uint(k), uint64(1)<<uint(k+1), c)
	}
	return strings.TrimSpace(b.String())
}
