// Package kernels provides the synthetic GPGPU kernels driving the
// simulator. Real CUDA binaries are unavailable in this environment, so each
// of the paper's 15 applications (Table III) is modelled as a procedural
// per-warp instruction/address stream parameterised by memory intensity,
// coalescing, row-buffer locality, working-set size and thread-level
// parallelism, calibrated so that the kernel's alone DRAM-bandwidth
// utilisation approximates the paper's Table III characterisation (see
// DESIGN.md §2 for why this substitution preserves the evaluated behaviour).
package kernels

import "fmt"

// Pattern selects how a kernel's warps generate addresses.
type Pattern uint8

const (
	// BlockStream is coalesced block-cooperative streaming: the warps of a
	// thread block interleave over one shared sequential region, so their
	// concurrent requests cover adjacent lines — the access shape that
	// gives real GPU kernels high row-buffer locality.
	BlockStream Pattern = iota
	// Scatter gives every warp an independent cursor with short sequential
	// runs between random jumps: poorly coalesced, low row locality.
	Scatter
	// Strided walks the footprint with a fixed large stride (column-major
	// matrix access): deterministic, zero row reuse, and — when the stride
	// resonates with the bank interleave — severe bank camping.
	Strided
)

func (p Pattern) String() string {
	switch p {
	case Scatter:
		return "scatter"
	case Strided:
		return "strided"
	default:
		return "blockstream"
	}
}

// Profile statically describes one synthetic kernel.
type Profile struct {
	Name string // full application name
	Abbr string // two-letter abbreviation used in the paper's figures

	// MemFrac is the fraction of warp instructions that are memory
	// operations; the main memory-intensity knob. Memory instructions are
	// issued periodically (every 1/MemFrac instructions) so that the warps
	// of a block stay in loose lockstep, like real unrolled kernel loops.
	MemFrac float64
	// ComputeLat is the dependent-issue latency, in cycles, of a compute
	// instruction (the warp cannot issue again until it elapses).
	ComputeLat int
	// CoalescedLines is how many adjacent cache lines one memory
	// instruction touches (vectorised/multi-word accesses).
	CoalescedLines int
	// Pattern selects the address-generation shape.
	Pattern Pattern
	// SeqRun is the number of memory accesses a region is streamed for
	// before jumping to a new random region; long runs give high
	// row-buffer locality.
	SeqRun int
	// ScatterFrac is the fraction of memory instructions in a BlockStream
	// kernel whose lines land at random (uncoalesced gathers mixed into a
	// streaming kernel); the row-locality fine-tuning knob.
	ScatterFrac float64
	// StrideLines is the per-access line stride of the Strided pattern.
	StrideLines uint64
	// FootprintLines is the kernel's working set in cache lines; small
	// footprints hit in the shared L2 and make the kernel cache-sensitive.
	FootprintLines uint64
	// WriteFrac is the fraction of memory instructions that are stores.
	WriteFrac float64
	// BarrierEvery inserts a block-wide barrier (__syncthreads) after every
	// BarrierEvery instructions (0 = none). Barriers re-synchronise the
	// block's warps, restoring the coalesced-access adjacency that drifts
	// as warps diverge.
	BarrierEvery int
	// WarpsPerBlock and Blocks bound thread-level parallelism: an SM can
	// host at most floor(MaxWarps/WarpsPerBlock) blocks (and at most
	// MaxBlocks), and the kernel has Blocks thread blocks in total.
	WarpsPerBlock int
	Blocks        int
	// InstPerWarp is the instruction count each warp executes per block.
	InstPerWarp int

	// PaperBW is Table III's reported alone DRAM bandwidth utilisation,
	// kept for documentation and calibration tests.
	PaperBW float64
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s(%s: mem=%.3f row=%d fp=%d blocks=%d)",
		p.Abbr, p.Name, p.MemFrac, p.SeqRun, p.FootprintLines, p.Blocks)
}

// WithMemFrac returns a copy of the profile with a different memory
// intensity; used by the Figure 3 sweep (performance vs request service
// rate).
func (p Profile) WithMemFrac(f float64) Profile {
	p.MemFrac = f
	return p
}

// Validate reports the first structural problem with the profile.
func (p *Profile) Validate() error {
	switch {
	case p.MemFrac < 0 || p.MemFrac > 1:
		return fmt.Errorf("kernel %s: MemFrac %v out of [0,1]", p.Abbr, p.MemFrac)
	case p.ComputeLat <= 0:
		return fmt.Errorf("kernel %s: ComputeLat must be positive", p.Abbr)
	case p.CoalescedLines <= 0 || p.CoalescedLines > MaxLinesPerOp:
		return fmt.Errorf("kernel %s: CoalescedLines %d out of [1,%d]", p.Abbr, p.CoalescedLines, MaxLinesPerOp)
	case p.SeqRun <= 0:
		return fmt.Errorf("kernel %s: SeqRun must be positive", p.Abbr)
	case p.FootprintLines == 0:
		return fmt.Errorf("kernel %s: FootprintLines must be positive", p.Abbr)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("kernel %s: WriteFrac %v out of [0,1]", p.Abbr, p.WriteFrac)
	case p.WarpsPerBlock <= 0 || p.Blocks <= 0 || p.InstPerWarp <= 0:
		return fmt.Errorf("kernel %s: TLP parameters must be positive", p.Abbr)
	case p.BarrierEvery < 0:
		return fmt.Errorf("kernel %s: BarrierEvery must be non-negative", p.Abbr)
	}
	return nil
}

// MaxLinesPerOp bounds the fan-out of one memory instruction.
const MaxLinesPerOp = 8

// Op is one decoded warp instruction.
type Op struct {
	Mem        bool
	Write      bool
	Barrier    bool // block-wide barrier: the warp waits for its siblings
	ComputeLat uint32
	NLines     int
	Lines      [MaxLinesPerOp]uint64 // byte addresses, line-aligned
}

// LineBytes is the cache-line granularity of generated addresses. It must
// match config.CacheConfig.LineBytes of both cache levels.
const LineBytes = 128

// splitmix64 is the deterministic per-warp PRNG step.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// WarpStream generates the instruction stream of one warp of one thread
// block, deterministically from its block seed and warp index.
type WarpStream struct {
	p           *Profile
	base        uint64 // application address-space base
	blockSeed   uint64 // shared by all warps of the block
	warp        int    // index within the block
	remain      int    // instructions left
	n           uint64 // memory accesses performed so far
	issuedCount int
	memAcc      float64
}

// NewWarpStream builds the stream for warp index warp of the block
// identified by blockID, for the app whose address space starts at base and
// whose run seed is seed. All warps of a block share blockID and seed, so
// they cooperate on the same address regions.
func NewWarpStream(p *Profile, base uint64, blockID uint64, warp int, seed uint64) *WarpStream {
	bs := seed ^ blockID*0xc2b2ae3d27d4eb4f
	bs = bs*0x9e3779b97f4a7c15 + 0x165667b19e3779f9
	return &WarpStream{
		p:         p,
		base:      base,
		blockSeed: bs,
		warp:      warp,
		remain:    p.InstPerWarp,
	}
}

// Remaining returns the instructions the warp has yet to execute.
func (ws *WarpStream) Remaining() int { return ws.remain }

// Next decodes the warp's next instruction into op. It returns false when
// the warp has finished its block's work.
func (ws *WarpStream) Next(op *Op) bool {
	if ws.remain <= 0 {
		return false
	}
	ws.remain--
	ws.issuedCount++
	if ws.p.BarrierEvery > 0 && ws.issuedCount%ws.p.BarrierEvery == 0 {
		// Same instruction index on every warp of the block, so all warps
		// arrive at the same barriers.
		*op = Op{Barrier: true, ComputeLat: 1}
		return true
	}
	op.Barrier = false
	ws.memAcc += ws.p.MemFrac
	if ws.memAcc < 1 {
		op.Mem = false
		op.ComputeLat = uint32(ws.p.ComputeLat)
		op.NLines = 0
		return true
	}
	ws.memAcc--
	op.Mem = true
	op.ComputeLat = 0
	// The write decision is a deterministic hash of the block's access
	// index, shared across the block's warps (they execute the same code).
	h := ws.blockSeed + ws.n*0x9e3779b97f4a7c15
	wr := splitmix64(&h)
	op.Write = float64(wr>>11)/(1<<53) < ws.p.WriteFrac
	cl := ws.p.CoalescedLines
	op.NLines = cl
	pattern := ws.p.Pattern
	if pattern == BlockStream && ws.p.ScatterFrac > 0 {
		sh := ws.blockSeed ^ ws.n*0x2545f4914f6cdd1d ^ uint64(ws.warp+1)*0x9e3779b97f4a7c15
		sr := splitmix64(&sh)
		if float64(sr>>11)/(1<<53) < ws.p.ScatterFrac {
			pattern = Scatter
		}
	}
	switch pattern {
	case BlockStream:
		ws.blockStreamLines(op)
	case Strided:
		ws.stridedLines(op)
	default:
		ws.scatterLines(op)
	}
	ws.n++
	return true
}

// blockStreamLines implements the coalesced block-cooperative pattern: the
// block's W warps interleave over one shared region, each instruction
// covering CoalescedLines adjacent lines; the region changes every SeqRun
// accesses, derived from (blockSeed, n/SeqRun) so all warps jump together
// without shared state.
func (ws *WarpStream) blockStreamLines(op *Op) {
	p := ws.p
	w := uint64(p.WarpsPerBlock)
	cl := uint64(p.CoalescedLines)
	span := uint64(p.SeqRun) * w * cl // lines per region
	regions := p.FootprintLines / span
	if regions == 0 {
		regions = 1
	}
	h := ws.blockSeed ^ (ws.n/uint64(p.SeqRun))*0xd1342543de82ef95
	region := (splitmix64(&h) % regions) * span
	idx := ws.n % uint64(p.SeqRun)
	lineBase := region + idx*w*cl + uint64(ws.warp)*cl
	for i := uint64(0); i < cl; i++ {
		l := (lineBase + i) % p.FootprintLines
		op.Lines[i] = ws.base + l*LineBytes
	}
}

// stridedLines implements the column-walk pattern: access n of warp w lands
// at (w + n*W)*stride within the footprint — warps cover distinct columns
// in lockstep, every access a fixed stride apart.
func (ws *WarpStream) stridedLines(op *Op) {
	p := ws.p
	stride := p.StrideLines
	if stride == 0 {
		stride = 64
	}
	w := uint64(p.WarpsPerBlock)
	base := (uint64(ws.warp) + ws.n*w) * stride
	for i := 0; i < p.CoalescedLines; i++ {
		l := (base + uint64(i)) % p.FootprintLines
		op.Lines[i] = ws.base + l*LineBytes
	}
}

// scatterLines implements the poorly-coalesced pattern: each warp has an
// independent cursor with SeqRun-access sequential runs between random
// jumps, and the instruction's CoalescedLines lines are strided apart
// (un-coalesced gather).
func (ws *WarpStream) scatterLines(op *Op) {
	p := ws.p
	h := ws.blockSeed ^ uint64(ws.warp+1)*0xff51afd7ed558ccd ^ (ws.n/uint64(p.SeqRun))*0xd1342543de82ef95
	start := splitmix64(&h) % p.FootprintLines
	idx := ws.n % uint64(p.SeqRun)
	// The first line continues the warp's short sequential run; any
	// further lines of the instruction land far away (un-coalesced
	// gather).
	op.Lines[0] = ws.base + (start+idx)%p.FootprintLines*LineBytes
	for i := 1; i < p.CoalescedLines; i++ {
		hh := h + ws.n*0x2545f4914f6cdd1d + uint64(i)*0x9e3779b97f4a7c15
		l := splitmix64(&hh) % p.FootprintLines
		op.Lines[i] = ws.base + l*LineBytes
	}
}
