package kernels

import (
	"testing"
	"testing/quick"
)

// TestBlockStreamConsecutiveAccessesAdjacent: with ScatterFrac 0, a warp's
// consecutive memory accesses within one region advance by a fixed stride
// (warps-per-block x coalesced lines), preserving spatial locality.
func TestBlockStreamConsecutiveAccessesAdjacent(t *testing.T) {
	p, _ := ByAbbr("VA")
	p.ScatterFrac = 0
	ws := NewWarpStream(&p, 0, 3, 2, 11)
	var op Op
	var lines []uint64
	for len(lines) < int(4) {
		if !ws.Next(&op) {
			t.Fatal("stream exhausted early")
		}
		if op.Mem {
			lines = append(lines, op.Lines[0]/LineBytes)
		}
	}
	stride := uint64(p.WarpsPerBlock * p.CoalescedLines)
	adjacent := 0
	for i := 1; i < len(lines); i++ {
		if lines[i] == lines[i-1]+stride {
			adjacent++
		}
	}
	// At least 2 of 3 transitions stay within the region (one may cross a
	// region boundary).
	if adjacent < 2 {
		t.Fatalf("only %d of %d transitions were stride-adjacent: %v", adjacent, len(lines)-1, lines)
	}
}

// TestScatterFracZeroOneBounds: ScatterFrac 0 must never take the scatter
// path; ScatterFrac 1 must always take it. Distinguish by the block-level
// adjacency property.
func TestScatterFracBounds(t *testing.T) {
	base, _ := ByAbbr("VA")

	firstMemLine := func(p Profile, warp int) uint64 {
		ws := NewWarpStream(&p, 0, 9, warp, 5)
		var op Op
		for ws.Next(&op) {
			if op.Mem {
				return op.Lines[0] / LineBytes
			}
		}
		t.Fatal("no memory op")
		return 0
	}

	p0 := base
	p0.ScatterFrac = 0
	d0 := int64(firstMemLine(p0, 1)) - int64(firstMemLine(p0, 0))
	if d0 != int64(p0.CoalescedLines) {
		t.Fatalf("pure stream warp distance %d, want %d", d0, p0.CoalescedLines)
	}

	p1 := base
	p1.ScatterFrac = 1
	d1 := int64(firstMemLine(p1, 1)) - int64(firstMemLine(p1, 0))
	if d1 < 0 {
		d1 = -d1
	}
	if d1 <= int64(p1.CoalescedLines*p1.WarpsPerBlock) {
		t.Fatalf("pure scatter warps landed adjacent (%d apart)", d1)
	}
}

// TestWriteDecisionSharedAcrossBlock: all warps of a block must agree on
// which access indices are stores (they execute the same code).
func TestWriteDecisionSharedAcrossBlock(t *testing.T) {
	p, _ := ByAbbr("SB")
	p.ScatterFrac = 0
	collect := func(warp int) []bool {
		ws := NewWarpStream(&p, 0, 4, warp, 13)
		var op Op
		var writes []bool
		for ws.Next(&op) {
			if op.Mem {
				writes = append(writes, op.Write)
			}
		}
		return writes
	}
	w0, w1 := collect(0), collect(1)
	if len(w0) == 0 || len(w0) != len(w1) {
		t.Fatalf("write streams differ in length: %d vs %d", len(w0), len(w1))
	}
	for i := range w0 {
		if w0[i] != w1[i] {
			t.Fatalf("warps disagree on store at access %d", i)
		}
	}
}

// TestComputeLatencyProperty: every non-memory op carries the profile's
// compute latency.
func TestComputeLatencyProperty(t *testing.T) {
	f := func(seed uint16) bool {
		p, _ := ByAbbr("QR")
		ws := NewWarpStream(&p, 0, uint64(seed), 0, uint64(seed))
		var op Op
		for i := 0; i < 200 && ws.Next(&op); i++ {
			if !op.Mem && op.ComputeLat != uint32(p.ComputeLat) {
				return false
			}
			if op.Mem && op.NLines != p.CoalescedLines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
