package kernels

import (
	"testing"
	"testing/quick"
)

func TestAllProfilesValidate(t *testing.T) {
	ps := All()
	if len(ps) != 15 {
		t.Fatalf("Table III has 15 applications, got %d", len(ps))
	}
	seen := map[string]bool{}
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			t.Errorf("%s: %v", ps[i].Abbr, err)
		}
		if seen[ps[i].Abbr] {
			t.Errorf("duplicate abbreviation %s", ps[i].Abbr)
		}
		seen[ps[i].Abbr] = true
		if ps[i].PaperBW <= 0 || ps[i].PaperBW > 1 {
			t.Errorf("%s: PaperBW %v out of range", ps[i].Abbr, ps[i].PaperBW)
		}
	}
}

func TestByAbbr(t *testing.T) {
	p, ok := ByAbbr("SB")
	if !ok || p.Name != "sobol" {
		t.Fatalf("ByAbbr(SB) = %v, %v", p, ok)
	}
	if _, ok := ByAbbr("ZZ"); ok {
		t.Fatal("unknown abbreviation resolved")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 15 || names[0] != "BS" || names[14] != "SD" {
		t.Fatalf("unexpected Table III order: %v", names)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByAbbr("SB")
	cases := []func(*Profile){
		func(p *Profile) { p.MemFrac = -0.1 },
		func(p *Profile) { p.MemFrac = 1.5 },
		func(p *Profile) { p.ComputeLat = 0 },
		func(p *Profile) { p.CoalescedLines = 0 },
		func(p *Profile) { p.CoalescedLines = MaxLinesPerOp + 1 },
		func(p *Profile) { p.SeqRun = 0 },
		func(p *Profile) { p.FootprintLines = 0 },
		func(p *Profile) { p.WriteFrac = 2 },
		func(p *Profile) { p.Blocks = 0 },
		func(p *Profile) { p.InstPerWarp = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
}

func TestWithMemFrac(t *testing.T) {
	p, _ := ByAbbr("SB")
	q := p.WithMemFrac(0.5)
	if q.MemFrac != 0.5 || p.MemFrac == 0.5 {
		t.Fatal("WithMemFrac must copy, not mutate")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p, _ := ByAbbr("VA")
	a := NewWarpStream(&p, 1<<40, 7, 3, 42)
	b := NewWarpStream(&p, 1<<40, 7, 3, 42)
	var opA, opB Op
	for i := 0; i < 500; i++ {
		okA := a.Next(&opA)
		okB := b.Next(&opB)
		if okA != okB || opA != opB {
			t.Fatalf("streams diverge at instruction %d", i)
		}
		if !okA {
			break
		}
	}
}

func TestStreamInstructionCount(t *testing.T) {
	p, _ := ByAbbr("VA")
	p.InstPerWarp = 100
	ws := NewWarpStream(&p, 0, 0, 0, 1)
	var op Op
	n := 0
	for ws.Next(&op) {
		n++
	}
	if n != 100 {
		t.Fatalf("stream yielded %d instructions, want 100", n)
	}
	if ws.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", ws.Remaining())
	}
}

func TestMemFracRatio(t *testing.T) {
	p, _ := ByAbbr("VA")
	p.InstPerWarp = 10_000
	ws := NewWarpStream(&p, 0, 0, 0, 1)
	var op Op
	mem := 0
	for ws.Next(&op) {
		if op.Mem {
			mem++
		}
	}
	got := float64(mem) / 10_000
	if got < p.MemFrac*0.9 || got > p.MemFrac*1.1 {
		t.Fatalf("memory fraction %.4f, profile says %.4f", got, p.MemFrac)
	}
}

// TestBlockStreamCoalescing: the warps of one block must cover adjacent
// lines at the same access index — that is what produces row locality.
func TestBlockStreamCoalescing(t *testing.T) {
	p, _ := ByAbbr("VA")
	p.ScatterFrac = 0 // pure streaming so every access is block-cooperative
	warps := make([]*WarpStream, p.WarpsPerBlock)
	for w := range warps {
		warps[w] = NewWarpStream(&p, 0, 5, w, 9)
	}
	// Drive all warps to their first memory instruction.
	firstLines := make([]uint64, len(warps))
	for w, ws := range warps {
		var op Op
		for ws.Next(&op) {
			if op.Mem {
				firstLines[w] = op.Lines[0] / LineBytes
				break
			}
		}
	}
	// Lines must be consecutive with stride CoalescedLines per warp.
	for w := 1; w < len(warps); w++ {
		want := firstLines[0] + uint64(w*p.CoalescedLines)
		if firstLines[w] != want {
			t.Fatalf("warp %d first line %d, want %d (block-cooperative streaming)", w, firstLines[w], want)
		}
	}
}

// TestScatterSpreads: the scatter pattern must not produce the coalesced
// adjacency of BlockStream.
func TestScatterSpreads(t *testing.T) {
	p, _ := ByAbbr("SD") // scatter kernel
	a := NewWarpStream(&p, 0, 5, 0, 9)
	b := NewWarpStream(&p, 0, 5, 1, 9)
	var la, lb uint64
	var op Op
	for a.Next(&op) {
		if op.Mem {
			la = op.Lines[0] / LineBytes
			break
		}
	}
	for b.Next(&op) {
		if op.Mem {
			lb = op.Lines[0] / LineBytes
			break
		}
	}
	diff := int64(la) - int64(lb)
	if diff < 0 {
		diff = -diff
	}
	if diff <= int64(p.CoalescedLines*p.WarpsPerBlock) {
		t.Fatalf("scatter warps landed adjacent (%d apart) — looks coalesced", diff)
	}
}

// TestAddressesWithinFootprintProperty: every generated address must stay
// inside [base, base+footprint*LineBytes).
func TestAddressesWithinFootprintProperty(t *testing.T) {
	p, _ := ByAbbr("CT") // small footprint makes violations visible
	f := func(block uint16, warp uint8, seed uint16) bool {
		ws := NewWarpStream(&p, 1<<40, uint64(block), int(warp)%p.WarpsPerBlock, uint64(seed))
		var op Op
		for i := 0; i < 300 && ws.Next(&op); i++ {
			if !op.Mem {
				continue
			}
			for k := 0; k < op.NLines; k++ {
				off := op.Lines[k] - 1<<40
				if op.Lines[k] < 1<<40 || off >= p.FootprintLines*LineBytes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternString(t *testing.T) {
	if BlockStream.String() != "blockstream" || Scatter.String() != "scatter" {
		t.Fatal("Pattern.String broken")
	}
}

func TestProfileString(t *testing.T) {
	p, _ := ByAbbr("SB")
	if p.String() == "" {
		t.Fatal("empty profile string")
	}
}
