package kernels

import (
	"os"
	"path/filepath"
	"testing"
)

func TestKernelsJSONRoundTrip(t *testing.T) {
	data, err := ToJSON(All())
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("round trip lost kernels: %d", len(got))
	}
	for i, p := range All() {
		if got[i] != p {
			t.Fatalf("kernel %s changed in round trip", p.Abbr)
		}
	}
}

func TestKernelsFromJSONRejectsBadInput(t *testing.T) {
	if _, err := FromJSON([]byte("[]")); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := FromJSON([]byte("{bad")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// Duplicate abbreviations.
	dup := []Profile{table3[0], table3[0]}
	data, _ := ToJSON(dup)
	if _, err := FromJSON(data); err == nil {
		t.Fatal("duplicate abbreviation accepted")
	}
	// Invalid profile.
	bad := table3[0]
	bad.ComputeLat = 0
	data, _ = ToJSON([]Profile{bad})
	if _, err := FromJSON(data); err == nil {
		t.Fatal("invalid profile accepted")
	}
	// Missing Abbr.
	anon := table3[0]
	anon.Abbr = ""
	data, _ = ToJSON([]Profile{anon})
	if _, err := FromJSON(data); err == nil {
		t.Fatal("profile without Abbr accepted")
	}
}

func TestKernelsLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kernels.json")
	data, _ := ToJSON(All()[:3])
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d kernels", len(got))
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
