package kernels

// The 15 applications of the paper's Table III. Each synthetic profile is
// calibrated (see calibrate_test.go and cmd/experiments -run tableIII) so
// that its alone DRAM-bandwidth utilisation on the Table II GPU lands near
// the paper's measured utilisation (PaperBW), and so that the set spans the
// behaviour classes the evaluation depends on:
//
//   - memory-bandwidth-bound streamers (SB, BS, AA, VA, SA, NN, SP, SC, AT)
//   - a low-row-locality victim kernel (SD, srad: scattered stencil reads)
//   - cache-sensitive kernels with L2-resident working sets (CT)
//   - compute-heavy kernels (QR, BG)
//   - a TLP-limited kernel with very few thread blocks (SN)
var table3 = []Profile{
	{
		Name: "blackScholes", Abbr: "BS", PaperBW: 0.65,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.06, SeqRun: 16,
		FootprintLines: 2 << 20, WriteFrac: 0.25,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "asyncAPI", Abbr: "AA", PaperBW: 0.61,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.107, SeqRun: 24,
		FootprintLines: 2 << 20, WriteFrac: 0.30,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "convolutionTexture", Abbr: "CT", PaperBW: 0.16,
		MemFrac: 0.012, ComputeLat: 4, CoalescedLines: 2,
		Pattern: BlockStream, SeqRun: 8,
		FootprintLines: 7000, WriteFrac: 0.10,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "convolutionSeparable", Abbr: "CS", PaperBW: 0.32,
		MemFrac: 0.0084, ComputeLat: 5, CoalescedLines: 2,
		Pattern: BlockStream, SeqRun: 16,
		FootprintLines: 24_000, WriteFrac: 0.15,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "quasirandom", Abbr: "QR", PaperBW: 0.14,
		MemFrac: 0.0059, ComputeLat: 8, CoalescedLines: 1,
		Pattern: BlockStream, SeqRun: 12,
		FootprintLines: 1 << 20, WriteFrac: 0.40,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "vectorAdd", Abbr: "VA", PaperBW: 0.60,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.15, SeqRun: 32,
		FootprintLines: 2 << 20, WriteFrac: 0.33,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "sobol", Abbr: "SB", PaperBW: 0.68,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.045, SeqRun: 24,
		FootprintLines: 2 << 20, WriteFrac: 0.40,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "scan", Abbr: "SA", PaperBW: 0.58,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.17, SeqRun: 24,
		FootprintLines: 2 << 20, WriteFrac: 0.35,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "scalarProd", Abbr: "SP", PaperBW: 0.55,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.21, SeqRun: 16,
		FootprintLines: 2 << 20, WriteFrac: 0.10,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "alignedTypes", Abbr: "AT", PaperBW: 0.47,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.48, SeqRun: 12,
		FootprintLines: 2 << 20, WriteFrac: 0.45,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "sortingNetworks", Abbr: "SN", PaperBW: 0.20,
		MemFrac: 0.013, ComputeLat: 4, CoalescedLines: 2,
		Pattern: Scatter, SeqRun: 8,
		FootprintLines: 1 << 18, WriteFrac: 0.50,
		WarpsPerBlock: 8, Blocks: 24, InstPerWarp: 12_000,
	},
	{
		Name: "stencil", Abbr: "SC", PaperBW: 0.53,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.26, SeqRun: 12,
		FootprintLines: 2 << 20, WriteFrac: 0.20,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "BICG", Abbr: "BG", PaperBW: 0.21,
		MemFrac: 0.0078, ComputeLat: 6, CoalescedLines: 1,
		Pattern: BlockStream, SeqRun: 16,
		FootprintLines: 1 << 19, WriteFrac: 0.15,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "Nn", Abbr: "NN", PaperBW: 0.56,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 4,
		Pattern: BlockStream, ScatterFrac: 0.19, SeqRun: 20,
		FootprintLines: 2 << 20, WriteFrac: 0.20,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
	{
		Name: "srad", Abbr: "SD", PaperBW: 0.40,
		MemFrac: 0.025, ComputeLat: 4, CoalescedLines: 2,
		Pattern: Scatter, SeqRun: 4,
		FootprintLines: 2 << 20, WriteFrac: 0.25,
		WarpsPerBlock: 8, Blocks: 4096, InstPerWarp: 3000,
	},
}

// All returns copies of the 15 Table III profiles, in the paper's order.
func All() []Profile {
	out := make([]Profile, len(table3))
	copy(out, table3)
	return out
}

// ByAbbr returns the profile with the given two-letter abbreviation.
func ByAbbr(abbr string) (Profile, bool) {
	for _, p := range table3 {
		if p.Abbr == abbr {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the abbreviations in Table III order.
func Names() []string {
	out := make([]string, len(table3))
	for i, p := range table3 {
		out[i] = p.Abbr
	}
	return out
}
