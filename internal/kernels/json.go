package kernels

import (
	"encoding/json"
	"fmt"
	"os"
)

// FromJSON parses a list of kernel profiles (the Profile struct's exported
// fields are the schema; Pattern is the numeric enum: 0 = BlockStream,
// 1 = Scatter, 2 = Strided). Every profile is validated.
func FromJSON(data []byte) ([]Profile, error) {
	var ps []Profile
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, fmt.Errorf("kernels: parse: %w", err)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("kernels: empty profile list")
	}
	seen := map[string]bool{}
	for i := range ps {
		if ps[i].Abbr == "" {
			return nil, fmt.Errorf("kernels: profile %d has no Abbr", i)
		}
		if seen[ps[i].Abbr] {
			return nil, fmt.Errorf("kernels: duplicate abbreviation %q", ps[i].Abbr)
		}
		seen[ps[i].Abbr] = true
		if err := ps[i].Validate(); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// LoadFile reads kernel profiles from a JSON file.
func LoadFile(path string) ([]Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kernels: %w", err)
	}
	return FromJSON(data)
}

// ToJSON serialises profiles (e.g. to bootstrap a custom workload file from
// the Table III set).
func ToJSON(ps []Profile) ([]byte, error) {
	return json.MarshalIndent(ps, "", "  ")
}
