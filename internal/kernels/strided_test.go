package kernels

import "testing"

func stridedProfile() Profile {
	return Profile{
		Name: "transpose", Abbr: "TP",
		MemFrac: 0.1, ComputeLat: 4, CoalescedLines: 1,
		Pattern: Strided, StrideLines: 96, SeqRun: 8,
		FootprintLines: 1 << 20,
		WarpsPerBlock:  4, Blocks: 64, InstPerWarp: 500,
	}
}

func TestStridedDeterministicWalk(t *testing.T) {
	p := stridedProfile()
	ws := NewWarpStream(&p, 0, 0, 1, 7)
	var op Op
	var lines []uint64
	for ws.Next(&op) {
		if op.Mem {
			lines = append(lines, op.Lines[0]/LineBytes)
		}
		if len(lines) == 4 {
			break
		}
	}
	// Warp 1 of a 4-warp block: accesses (1 + n*4) * 96.
	for n, l := range lines {
		want := (1 + uint64(n)*4) * 96 % p.FootprintLines
		if l != want {
			t.Fatalf("access %d at line %d, want %d", n, l, want)
		}
	}
}

func TestStridedDefaultStride(t *testing.T) {
	p := stridedProfile()
	p.StrideLines = 0 // defaults to 64
	ws := NewWarpStream(&p, 0, 0, 0, 7)
	var op Op
	for ws.Next(&op) {
		if op.Mem {
			if op.Lines[0] != 0 {
				// warp 0, first access: line 0 regardless of stride
				t.Fatalf("first strided access at %#x", op.Lines[0])
			}
			break
		}
	}
}

func TestStridedWarpsCoverDistinctColumns(t *testing.T) {
	p := stridedProfile()
	first := func(warp int) uint64 {
		ws := NewWarpStream(&p, 0, 0, warp, 7)
		var op Op
		for ws.Next(&op) {
			if op.Mem {
				return op.Lines[0] / LineBytes
			}
		}
		t.Fatal("no access")
		return 0
	}
	if first(0) == first(1) || first(1) == first(2) {
		t.Fatal("strided warps collided on a column")
	}
	if first(1)-first(0) != p.StrideLines {
		t.Fatalf("warp stride %d, want %d", first(1)-first(0), p.StrideLines)
	}
}

func TestStridedValidates(t *testing.T) {
	p := stridedProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if Strided.String() != "strided" {
		t.Fatal("pattern name")
	}
}
